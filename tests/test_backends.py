"""Tests for the pluggable execution backends (serial/thread/process/worker-pool).

The load-bearing invariant: a campaign's results are a pure function of
its spec — identical payloads and ``RunHistory`` digests no matter which
backend ran the cells, at any parallelism, through worker crashes.
"""

import json
import os
import socket
import subprocess
import sys
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments import comparison
from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    create_backend,
    report_cell_progress,
)
from repro.experiments.backends.worker_pool import (
    PROTOCOL_VERSION,
    WorkerPoolBackend,
    serve_worker,
)
from repro.experiments.campaign import (
    CampaignCache,
    CampaignSpec,
    execute_campaign,
)
from repro.experiments.reporting import execution_report


def demo_spec(n: int = 4, **base) -> CampaignSpec:
    """A campaign over the built-in demo runner (cheap, deterministic)."""
    return CampaignSpec.create(
        name="demo",
        runner="demo-cell",
        axes={"cell_id": tuple(range(n))},
        base=base,
    )


def run_on_worker_pool(spec, workers: int = 2, **exec_kwargs):
    """Execute a campaign on a local pool of in-thread workers."""
    backend = WorkerPoolBackend(port=0, start_timeout=30.0)
    host, port = backend.address
    threads = [
        threading.Thread(
            target=serve_worker,
            args=(host, port),
            kwargs={"name": f"w{i}", "retry_seconds": 15.0},
            daemon=True,
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    try:
        return execute_campaign(spec, backend=backend, **exec_kwargs)
    finally:
        for thread in threads:
            thread.join(timeout=10.0)


class TestRegistry:
    def test_all_four_backends_registered(self):
        assert set(EXECUTION_BACKENDS) == {"serial", "thread", "process", "worker-pool"}

    def test_create_backend_by_name(self):
        for name in ("serial", "thread", "process"):
            assert create_backend(name, jobs=2).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            create_backend("gpu")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            create_backend("thread", jobs=0)


class TestLocalBackendEquivalence:
    def test_payloads_identical_across_local_backends(self):
        spec = demo_spec(6)
        serial = execute_campaign(spec).payloads()
        assert execute_campaign(spec, backend="thread", jobs=3).payloads() == serial
        assert execute_campaign(spec, backend="process", jobs=3).payloads() == serial

    def test_event_stream_covers_every_cell(self):
        spec = demo_spec(3)
        for backend in ("serial", "thread", "process"):
            events = []
            execute_campaign(spec, backend=backend, jobs=2, on_event=events.append)
            kinds = [event.kind for event in events]
            assert kinds.count("cell_started") == 3, backend
            assert kinds.count("cell_finished") == 3, backend

    def test_jobs_one_defaults_to_serial_and_many_to_process(self):
        spec = demo_spec(2)
        assert execute_campaign(spec).backend == "serial"
        assert execute_campaign(spec, jobs=2).backend == "process"

    def test_single_pending_cell_resumes_inline_even_with_jobs(self, tmp_path):
        """A warm resume with one missing cell must not pay for a pool."""
        spec = demo_spec(3)
        first = execute_campaign(spec, cache_dir=tmp_path)
        CampaignCache(tmp_path).path_for(first.cells[1].key).unlink()
        resumed = execute_campaign(spec, jobs=4, cache_dir=tmp_path)
        assert resumed.backend == "serial"
        assert resumed.misses == 1
        assert resumed.payloads() == first.payloads()


class TestProgressStreaming:
    def test_serial_and_thread_deliver_progress_events(self):
        spec = demo_spec(2, progress_steps=3)
        for backend in ("serial", "thread"):
            events = []
            execute_campaign(spec, backend=backend, jobs=2, on_event=events.append)
            progress = [event for event in events if event.kind == "cell_progress"]
            assert len(progress) == 2 * 3, backend
            fractions = sorted(
                event.fraction for event in progress if event.index == 0
            )
            assert fractions == pytest.approx([1 / 3, 2 / 3, 1.0])
            assert progress[0].message.startswith("step ")

    def test_report_progress_outside_a_cell_is_a_noop(self):
        report_cell_progress(0.5, "nobody listening")  # must not raise


class TestFailureSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failure_drains_and_caches_survivors(self, backend, tmp_path):
        spec = demo_spec(4, fail_ids=[2])
        with pytest.raises(RuntimeError, match="demo cell 2"):
            execute_campaign(spec, backend=backend, jobs=2, cache_dir=tmp_path)
        # The three healthy cells still reached the cache.
        assert len(CampaignCache(tmp_path)) == 3

    def test_failed_event_carries_exception_for_in_process_backends(self):
        spec = demo_spec(2, fail_ids=[1])
        events = []
        with pytest.raises(RuntimeError):
            execute_campaign(spec, on_event=events.append)
        [failure] = [event for event in events if event.kind == "cell_failed"]
        assert isinstance(failure.exception, RuntimeError)


class TestWorkerPool:
    def test_two_workers_match_serial(self, tmp_path):
        spec = demo_spec(6)
        serial = execute_campaign(spec).payloads()
        result = run_on_worker_pool(spec, workers=2, cache_dir=tmp_path)
        assert result.payloads() == serial
        assert result.backend == "worker-pool"
        assert result.event_counts.get("worker_joined") == 2
        assert len(CampaignCache(tmp_path)) == 6

    def test_progress_streams_over_the_wire(self):
        spec = demo_spec(2, progress_steps=2)
        events = []
        run_on_worker_pool(spec, workers=1, on_event=events.append)
        progress = [event for event in events if event.kind == "cell_progress"]
        assert len(progress) == 4
        assert all(event.worker == "w0" for event in progress)

    def test_cell_failure_is_isolated_not_fatal_to_worker(self, tmp_path):
        spec = demo_spec(4, fail_ids=[0])
        with pytest.raises(RuntimeError, match="demo cell 0"):
            run_on_worker_pool(spec, workers=1, cache_dir=tmp_path)
        # The same (single) worker still computed the healthy cells.
        assert len(CampaignCache(tmp_path)) == 3

    def test_capacity_runs_cells_concurrently(self):
        """A capacity-2 worker must genuinely overlap two sleeping cells."""
        spec = demo_spec(2, sleep_seconds=0.6)
        backend = WorkerPoolBackend(port=0, start_timeout=30.0)
        host, port = backend.address
        worker = threading.Thread(
            target=serve_worker,
            args=(host, port),
            kwargs={"name": "wide", "capacity": 2, "retry_seconds": 15.0},
            daemon=True,
        )
        worker.start()
        result = execute_campaign(spec, backend=backend)
        worker.join(timeout=10.0)
        assert len(result.cells) == 2
        # Overlap proof that tolerates slow CI: sequential execution implies
        # wall >= sum of per-cell compute time; concurrency inverts that.
        assert result.cell_seconds > result.wall_seconds

    def test_fully_cached_run_releases_coordinator_and_workers(self, tmp_path):
        """A warm run computes nothing, but must still close the coordinator
        socket and let attached workers terminate."""
        spec = demo_spec(2)
        execute_campaign(spec, cache_dir=tmp_path)
        backend = WorkerPoolBackend(port=0, start_timeout=30.0)
        host, port = backend.address

        def attach_quietly():
            # The coordinator may close before we ever connect (that is the
            # point of the test); a refused connection is a fine outcome.
            try:
                serve_worker(host, port, name="idle", retry_seconds=5.0)
            except OSError:
                pass

        worker = threading.Thread(target=attach_quietly, daemon=True)
        worker.start()
        result = execute_campaign(spec, backend=backend, cache_dir=tmp_path)
        assert result.hits == 2 and result.misses == 0
        worker.join(timeout=10.0)
        assert not worker.is_alive(), "worker still blocked after a warm run"

    def test_no_workers_raises_after_start_timeout(self):
        backend = WorkerPoolBackend(port=0, start_timeout=0.5)
        with pytest.raises(RuntimeError, match="no live workers"):
            execute_campaign(demo_spec(1), backend=backend)

    def test_duplicate_worker_names_are_disambiguated(self):
        backend = WorkerPoolBackend(port=0, start_timeout=30.0)
        host, port = backend.address
        threads = [
            threading.Thread(
                target=serve_worker,
                args=(host, port),
                kwargs={"name": "twin", "retry_seconds": 15.0},
                daemon=True,
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        events = []
        # Sleeping cells keep the sweep alive long enough for both twins to
        # attach even when one thread starts slowly.
        execute_campaign(
            demo_spec(4, sleep_seconds=0.4), backend=backend, on_event=events.append
        )
        joined = {event.worker for event in events if event.kind == "worker_joined"}
        assert len(joined) == 2 and "twin" in joined
        for thread in threads:
            thread.join(timeout=10.0)


class TestCodeEquivalenceGuards:
    def test_rejecting_worker_is_dropped_and_cells_requeued(self):
        """A worker whose checkout fingerprints differently must not compute:
        it rejects, is dropped, and its cell lands on an up-to-date worker."""
        backend = WorkerPoolBackend(port=0, start_timeout=30.0)
        host, port = backend.address

        def stale_worker():
            sock = socket.create_connection((host, port), timeout=10.0)
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
            wfile.write(
                json.dumps(
                    {
                        "type": "hello",
                        "worker": "stale",
                        "capacity": 1,
                        "protocol": PROTOCOL_VERSION,
                    }
                )
                + "\n"
            )
            wfile.flush()
            frame = json.loads(rfile.readline() or "{}")
            if frame.get("type") == "cell":
                wfile.write(
                    json.dumps(
                        {
                            "type": "reject",
                            "cell": frame["cell"],
                            "reason": "stale checkout",
                        }
                    )
                    + "\n"
                )
                wfile.flush()
            rfile.readline()  # wait for the coordinator to cut us loose
            sock.close()

        stale = threading.Thread(target=stale_worker, daemon=True)
        stale.start()
        events = []
        good_started = threading.Event()

        def on_event(event):
            events.append(event)
            # Only bring up the good worker once the stale one was dropped,
            # so the reject path is exercised deterministically.
            if event.kind == "worker_lost" and not good_started.is_set():
                good_started.set()
                threading.Thread(
                    target=serve_worker,
                    args=(host, port),
                    kwargs={"name": "good", "retry_seconds": 15.0},
                    daemon=True,
                ).start()

        result = execute_campaign(demo_spec(2), backend=backend, on_event=on_event)
        stale.join(timeout=10.0)
        assert len(result.cells) == 2
        assert result.payloads() == execute_campaign(demo_spec(2)).payloads()
        [lost] = [event for event in events if event.kind == "worker_lost"]
        assert lost.worker == "stale" and "code mismatch" in lost.reason
        assert lost.requeued  # the dispatched cell went back to the queue

    def test_wrong_protocol_hello_is_refused(self):
        backend = WorkerPoolBackend(port=0, start_timeout=1.5)
        host, port = backend.address
        outcome = {}

        def ancient_worker():
            sock = socket.create_connection((host, port), timeout=10.0)
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
            wfile.write(
                json.dumps({"type": "hello", "worker": "ancient", "protocol": -1})
                + "\n"
            )
            wfile.flush()
            outcome["eof"] = rfile.readline() == ""
            sock.close()

        thread = threading.Thread(target=ancient_worker, daemon=True)
        thread.start()
        with pytest.raises(RuntimeError, match="no live workers"):
            execute_campaign(demo_spec(1), backend=backend)
        thread.join(timeout=10.0)
        assert outcome.get("eof"), "mismatched worker was not disconnected"

    def test_backend_is_single_use(self, tmp_path):
        spec = demo_spec(2)
        execute_campaign(spec, cache_dir=tmp_path)
        backend = WorkerPoolBackend(port=0, start_timeout=5.0)
        warm = execute_campaign(spec, backend=backend, cache_dir=tmp_path)
        assert warm.hits == 2
        with pytest.raises(RuntimeError, match="already run"):
            execute_campaign(spec, backend=backend, cache_dir=tmp_path, force=True)


class TestWorkerCrash:
    def test_killing_a_worker_requeues_its_cells(self, tmp_path):
        """Kill one of two real worker processes mid-sweep: the coordinator
        must requeue its in-flight cells, finish the campaign with correct
        payloads, and report the loss."""
        spec = demo_spec(6, sleep_seconds=0.6)
        backend = WorkerPoolBackend(port=0, start_timeout=60.0)
        host, port = backend.address
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        procs = {}
        for name in ("stable", "crashme"):
            code = (
                "from repro.experiments.backends.worker_pool import serve_worker; "
                f"serve_worker('127.0.0.1', {port}, name={name!r}, retry_seconds=45)"
            )
            procs[name] = subprocess.Popen([sys.executable, "-c", code], env=env)
        killed = threading.Event()
        events = []

        def on_event(event):
            events.append(event)
            if (
                event.kind == "cell_started"
                and event.worker == "crashme"
                and not killed.is_set()
            ):
                killed.set()
                procs["crashme"].kill()

        try:
            result = execute_campaign(
                spec, backend=backend, cache_dir=tmp_path, on_event=on_event
            )
        finally:
            for proc in procs.values():
                proc.kill()
                proc.wait(timeout=10)
        assert killed.is_set(), "crashme never received a cell"
        # Payload content depends only on cell_id, so a sleepless serial run
        # gives the expected payloads cheaply.
        assert result.payloads() == execute_campaign(demo_spec(6)).payloads()
        assert result.event_counts.get("worker_lost", 0) >= 1
        report = execution_report(result)
        assert report["workers_lost"] >= 1
        assert report["workers_joined"] == 2
        lost = [event for event in events if event.kind == "worker_lost"]
        assert any(event.requeued for event in lost)
        assert len(result.cells) == 6


class TestBackendEquivalenceProperty:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=30),
        num_agents=st.integers(min_value=3, max_value=6),
    )
    def test_history_digests_identical_across_all_four_backends(
        self, seed, num_agents
    ):
        """CampaignResults are RunHistory.digest()-identical on every backend."""
        spec = comparison.campaign_spec(
            methods=("ComDML", "AllReduce"),
            num_agents=num_agents,
            max_rounds=3,
            target_accuracy=None,
            offload_granularity=9,
            seed=seed,
        )
        reference = [
            row["history_digest"] for row in execute_campaign(spec).payloads()
        ]
        for backend in ("thread", "process"):
            digests = [
                row["history_digest"]
                for row in execute_campaign(spec, jobs=2, backend=backend).payloads()
            ]
            assert digests == reference, backend
        pool = run_on_worker_pool(spec, workers=2)
        assert [row["history_digest"] for row in pool.payloads()] == reference
