"""Tests for the baseline training methods."""

import pytest

from repro.baselines import (
    AllReduceDML,
    BrainTorrent,
    FedAvg,
    FedProx,
    GossipLearning,
    baseline_by_name,
)
from repro.core.config import ComDMLConfig
from repro.models.resnet import resnet56_spec

ALL_BASELINES = [FedAvg, FedProx, AllReduceDML, GossipLearning, BrainTorrent]


def build(cls, registry, **config_kwargs):
    defaults = dict(max_rounds=5, offload_granularity=9, seed=2)
    defaults.update(config_kwargs)
    return cls(
        registry=registry,
        spec=resnet56_spec(),
        config=ComDMLConfig(**defaults),
    )


class TestBaselineRegistry:
    def test_lookup_by_name(self):
        assert baseline_by_name("FedAvg") is FedAvg
        assert baseline_by_name("gossip learning") is GossipLearning
        assert baseline_by_name("BrainTorrent") is BrainTorrent

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            baseline_by_name("magic")


class TestBaselineRuns:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_runs_produce_history(self, cls, small_registry):
        history = build(cls, small_registry).run()
        assert len(history) == 5
        assert history.total_time > 0
        assert history.method == cls.method_name

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_round_time_bounded_below_by_straggler(self, cls, small_registry, resnet56_profile):
        from repro.core.workload import individual_training_time

        trainer = build(cls, small_registry)
        total, compute, _ = trainer.round_timing(small_registry.agents)
        straggler = max(
            individual_training_time(agent, trainer.profile, 100)
            for agent in small_registry.agents
        )
        assert compute == pytest.approx(straggler)
        assert total >= straggler

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_accuracy_improves(self, cls, small_registry):
        history = build(cls, small_registry, max_rounds=30).run()
        assert history.final_accuracy > history.records[0].accuracy

    def test_empty_participant_round_is_free(self, small_registry):
        trainer = build(AllReduceDML, small_registry)
        assert trainer.round_timing([]) == (0.0, 0.0, 0.0)


class TestBaselineSpecifics:
    def test_fedavg_counts_model_exchange(self, small_registry):
        trainer = build(FedAvg, small_registry)
        agent = small_registry.agents[0]
        total, compute, communication = trainer.agent_round_time(agent)
        assert communication > 0
        assert total == pytest.approx(compute + communication)

    def test_fedprox_has_proximal_parameter(self, small_registry):
        trainer = build(FedProx, small_registry)
        assert trainer.proximal_mu > 0
        with pytest.raises(ValueError):
            FedProx(
                registry=small_registry,
                spec=resnet56_spec(),
                config=ComDMLConfig(max_rounds=2),
                proximal_mu=-1.0,
            )

    def test_braintorrent_aggregation_scales_with_population(self, small_registry, rng):
        from repro.agents.registry import AgentRegistry

        trainer = build(BrainTorrent, small_registry)
        few = trainer.round_timing(small_registry.agents[:2])
        many = trainer.round_timing(small_registry.agents)
        # Aggregation through one aggregator grows with the number of peers.
        assert many[0] - many[1] >= few[0] - few[1]

    def test_gossip_exchange_bounded_by_one_model(self, small_registry):
        trainer = build(GossipLearning, small_registry)
        total, compute, communication = trainer.round_timing(small_registry.agents)
        # One model push over the slowest participating link at most.
        slowest_bandwidth = min(
            agent.profile.bandwidth_bytes_per_second
            for agent in small_registry.agents
            if agent.is_connected
        )
        assert communication <= trainer.model_bytes() / slowest_bandwidth * 1.1 + 1.0

    def test_allreduce_uses_configured_algorithm(self, small_registry):
        ring = build(AllReduceDML, small_registry, allreduce_algorithm="ring")
        hd = build(AllReduceDML, small_registry, allreduce_algorithm="halving_doubling")
        ring_total, _, ring_comm = ring.round_timing(small_registry.agents)
        hd_total, _, hd_comm = hd.round_timing(small_registry.agents)
        assert ring_comm > 0 and hd_comm > 0

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_no_pairs_reported(self, cls, small_registry):
        history = build(cls, small_registry, max_rounds=2).run()
        assert all(record.num_pairs == 0 for record in history.records)
