"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.agents == 10
        assert args.dataset == "cifar10"
        assert args.target == 0.9

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "imagenet"])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for command in ("compare", "table1", "table2", "table3", "fig1", "fig3", "privacy"):
            args = parser.parse_args([command])
            assert callable(args.handler)


class TestMain:
    def test_compare_runs_and_prints(self, capsys):
        exit_code = main(
            [
                "compare",
                "--agents",
                "6",
                "--target",
                "0.5",
                "--max-rounds",
                "80",
                "--methods",
                "ComDML",
                "AllReduce",
                "--granularity",
                "9",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ComDML" in captured and "AllReduce" in captured
        assert "faster than" in captured

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        assert "offloaded layers" in capsys.readouterr().out

    def test_table1_json_export(self, tmp_path, capsys):
        out = tmp_path / "table1.json"
        exit_code = main(["table1", "--samples", "1000", "--json", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"setting1", "setting2"}
        assert len(payload["setting1"]) == 8

    def test_target_zero_disables_early_stop(self, capsys):
        exit_code = main(
            [
                "compare",
                "--agents",
                "4",
                "--target",
                "0",
                "--max-rounds",
                "5",
                "--methods",
                "ComDML",
                "--granularity",
                "9",
            ]
        )
        assert exit_code == 0
        assert "total_time_s" in capsys.readouterr().out

    def test_json_export_creates_parent_dirs(self, tmp_path, capsys):
        out = tmp_path / "deep" / "nested" / "fig1.json"
        assert main(["fig1", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["offloaded_layers"] > 0
        # No stray temp files left next to the target.
        assert list(out.parent.iterdir()) == [out]

    def test_compare_json_keeps_legacy_columns(self, tmp_path, capsys):
        out = tmp_path / "rows.json"
        assert (
            main(
                [
                    "compare",
                    "--agents",
                    "4",
                    "--target",
                    "0",
                    "--max-rounds",
                    "4",
                    "--methods",
                    "ComDML",
                    "--granularity",
                    "9",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        [row] = json.loads(out.read_text())
        assert list(row) == [
            "method",
            "rounds",
            "time_to_target_s",
            "total_time_s",
            "final_accuracy",
            "events",
        ]


class TestCampaignCommands:
    def test_run_preset_with_cache_then_all_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "campaign",
            "run",
            "ablation-allreduce",
            "--cache-dir",
            str(cache),
        ]
        assert main(argv + ["--report-json", str(tmp_path / "r1.json")]) == 0
        assert main(argv + ["--report-json", str(tmp_path / "r2.json")]) == 0
        first = json.loads((tmp_path / "r1.json").read_text())
        second = json.loads((tmp_path / "r2.json").read_text())
        assert first["cache_misses"] == first["cells"]
        assert second["cache_hits"] == second["cells"] > 0
        assert second["cache_misses"] == 0

    def test_summary_json_is_deterministic_across_runs(self, tmp_path, capsys):
        """--summary-json carries only result facts: identical bytes whether
        cells were computed or served from the cache."""
        cache = tmp_path / "cache"
        argv = ["campaign", "run", "ablation-allreduce", "--cache-dir", str(cache)]
        assert main(argv + ["--summary-json", str(tmp_path / "s1.json")]) == 0
        assert main(argv + ["--summary-json", str(tmp_path / "s2.json")]) == 0
        assert (tmp_path / "s1.json").read_bytes() == (tmp_path / "s2.json").read_bytes()
        summary = json.loads((tmp_path / "s1.json").read_text())
        assert summary["cells"] == len(summary["per_cell"])
        assert all(len(row["payload_digest"]) == 64 for row in summary["per_cell"])

    def test_backend_flag_thread_matches_serial(self, tmp_path, capsys):
        argv = ["campaign", "run", "ablation-allreduce", "--cache-dir"]
        assert main(
            argv
            + [str(tmp_path / "c1"), "--summary-json", str(tmp_path / "serial.json")]
        ) == 0
        assert main(
            argv
            + [
                str(tmp_path / "c2"),
                "--backend",
                "thread",
                "--jobs",
                "3",
                "--summary-json",
                str(tmp_path / "thread.json"),
                "--report-json",
                str(tmp_path / "thread-report.json"),
            ]
        ) == 0
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "thread.json"
        ).read_bytes()
        report = json.loads((tmp_path / "thread-report.json").read_text())
        assert report["backend"] == "thread"

    def test_progress_flag_streams_events(self, tmp_path, capsys):
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "ablation-allreduce",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--progress",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "cell 0 started" in err and "finished" in err

    def test_cache_dir_env_var_is_honoured(self, tmp_path, capsys, monkeypatch):
        env_cache = tmp_path / "env-cache"
        monkeypatch.setenv("COMDML_CACHE_DIR", str(env_cache))
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "ablation-allreduce",
                    "--report-json",
                    str(tmp_path / "report.json"),
                ]
            )
            == 0
        )
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["cache_dir"] == str(env_cache)
        assert env_cache.exists()
        # The explicit flag still wins over the environment.
        flag_cache = tmp_path / "flag-cache"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "ablation-allreduce",
                    "--cache-dir",
                    str(flag_cache),
                    "--report-json",
                    str(tmp_path / "report2.json"),
                ]
            )
            == 0
        )
        assert json.loads((tmp_path / "report2.json").read_text())["cache_dir"] == str(
            flag_cache
        )

    def test_run_spec_file(self, tmp_path, capsys):
        from repro.experiments.ablations import allreduce_spec

        spec_path = tmp_path / "sweep.json"
        allreduce_spec(agent_counts=(4, 8)).save(spec_path)
        payloads = tmp_path / "out.json"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(spec_path),
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--json",
                    str(payloads),
                ]
            )
            == 0
        )
        rows = json.loads(payloads.read_text())
        assert [row["num_agents"] for row in rows] == [4, 8]
        assert "campaign ablation-allreduce" in capsys.readouterr().out

    def test_show_reports_cache_status(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["campaign", "run", "ablation-allreduce", "--cache-dir", cache])
        capsys.readouterr()
        assert main(["campaign", "show", "ablation-allreduce", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "cached" in out and "pending" not in out

    def test_clean_removes_entries(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["campaign", "run", "ablation-allreduce", "--cache-dir", cache])
        capsys.readouterr()
        assert main(["campaign", "clean", "--cache-dir", cache]) == 0
        assert "removed 6" in capsys.readouterr().out

    def test_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "not-a-preset-or-file"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "table2", "--backend", "gpu"])


class TestWorkerCommands:
    def test_serve_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "serve"])

    def test_serve_fails_cleanly_when_no_coordinator(self, capsys):
        # Nothing listens on this port; the worker should give up after the
        # (short) retry window and exit non-zero with a readable error.
        code = main(
            [
                "worker",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "1",
                "--retry-seconds",
                "0.1",
            ]
        )
        assert code == 1
        assert "could not attach" in capsys.readouterr().err


class TestScheduleCommands:
    def test_poisson_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        assert (
            main(
                [
                    "schedule",
                    "poisson",
                    "--horizon",
                    "20000",
                    "--arrival-rate",
                    "0.0005",
                    "--departure-rate",
                    "0.0002",
                    "--candidates",
                    "0",
                    "1",
                    "--seed",
                    "3",
                    "--attachment",
                    "random-k",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "arrivals" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["events"], "expected a non-empty schedule"

    def test_compare_consumes_saved_schedule(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        main(
            [
                "schedule",
                "poisson",
                "--horizon",
                "20000",
                "--arrival-rate",
                "0.0005",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "compare",
                    "--agents",
                    "5",
                    "--target",
                    "0",
                    "--max-rounds",
                    "30",
                    "--methods",
                    "ComDML",
                    "--granularity",
                    "9",
                    "--schedule",
                    str(out),
                ]
            )
            == 0
        )
        assert "arr" in capsys.readouterr().out
