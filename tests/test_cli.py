"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.agents == 10
        assert args.dataset == "cifar10"
        assert args.target == 0.9

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "imagenet"])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for command in ("compare", "table1", "table2", "table3", "fig1", "fig3", "privacy"):
            args = parser.parse_args([command])
            assert callable(args.handler)


class TestMain:
    def test_compare_runs_and_prints(self, capsys):
        exit_code = main(
            [
                "compare",
                "--agents",
                "6",
                "--target",
                "0.5",
                "--max-rounds",
                "80",
                "--methods",
                "ComDML",
                "AllReduce",
                "--granularity",
                "9",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ComDML" in captured and "AllReduce" in captured
        assert "faster than" in captured

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        assert "offloaded layers" in capsys.readouterr().out

    def test_table1_json_export(self, tmp_path, capsys):
        out = tmp_path / "table1.json"
        exit_code = main(["table1", "--samples", "1000", "--json", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"setting1", "setting2"}
        assert len(payload["setting1"]) == 8

    def test_target_zero_disables_early_stop(self, capsys):
        exit_code = main(
            [
                "compare",
                "--agents",
                "4",
                "--target",
                "0",
                "--max-rounds",
                "5",
                "--methods",
                "ComDML",
                "--granularity",
                "9",
            ]
        )
        assert exit_code == 0
        assert "total_time_s" in capsys.readouterr().out
