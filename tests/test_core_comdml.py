"""Tests for the ComDML orchestrator."""

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.models.resnet import resnet56_spec
from repro.training.accuracy import CurveAccuracyTracker
from repro.training.curves import LearningCurveModel, curve_preset_for


def make_comdml(small_registry, **config_kwargs):
    defaults = dict(max_rounds=20, offload_granularity=9, seed=1)
    defaults.update(config_kwargs)
    config = ComDMLConfig(**defaults)
    return ComDML(registry=small_registry, spec=resnet56_spec(), config=config)


class TestComDMLRound:
    def test_run_round_produces_record(self, small_registry):
        comdml = make_comdml(small_registry)
        record = comdml.run_round(0)
        assert record.duration_seconds > 0
        assert record.cumulative_seconds == pytest.approx(record.duration_seconds)
        assert 0.0 <= record.accuracy <= 1.0

    def test_cumulative_time_monotone(self, small_registry):
        comdml = make_comdml(small_registry)
        history = comdml.run()
        times = history.times()
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_accuracy_improves_over_run(self, small_registry):
        comdml = make_comdml(small_registry, max_rounds=40)
        history = comdml.run()
        assert history.final_accuracy > history.records[0].accuracy

    def test_pairs_are_formed(self, small_registry):
        comdml = make_comdml(small_registry)
        record = comdml.run_round(0)
        assert record.num_pairs >= 1

    def test_target_accuracy_stops_early(self, small_registry):
        comdml = make_comdml(small_registry, max_rounds=500, target_accuracy=0.5)
        history = comdml.run()
        assert len(history) < 500
        assert history.final_accuracy >= 0.5

    def test_max_rounds_respected(self, small_registry):
        comdml = make_comdml(small_registry, max_rounds=7)
        assert len(comdml.run()) == 7

    def test_churn_changes_profiles(self, small_registry):
        comdml = make_comdml(
            small_registry, max_rounds=4, churn_fraction=1.0, churn_interval_rounds=2
        )
        before = {agent.agent_id: agent.profile for agent in small_registry}
        comdml.run()
        after = {agent.agent_id: agent.profile for agent in small_registry}
        assert any(before[i] != after[i] for i in before)

    def test_participation_fraction_limits_round(self, small_registry):
        comdml = make_comdml(small_registry, participation_fraction=0.5)
        decisions = comdml.scheduler.plan_round(comdml.scheduler.select_participants())
        involved = {d.slow_id for d in decisions} | {
            d.fast_id for d in decisions if d.fast_id is not None
        }
        assert len(involved) <= 3

    def test_custom_tracker_is_used(self, small_registry):
        tracker = CurveAccuracyTracker(
            LearningCurveModel(
                preset=curve_preset_for("cifar100", "resnet56"),
                method="comdml",
                rng=np.random.default_rng(0),
            )
        )
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(num_classes=100),
            config=ComDMLConfig(max_rounds=5, offload_granularity=9),
            accuracy_tracker=tracker,
        )
        history = comdml.run()
        assert len(history) == 5

    def test_history_method_name(self, small_registry):
        comdml = make_comdml(small_registry, max_rounds=2)
        assert comdml.run().method == "ComDML"

    def test_faster_than_no_balancing_baseline(self, small_registry):
        """ComDML's per-round time must beat the straggler-bound baseline."""
        from repro.baselines.allreduce_dml import AllReduceDML

        comdml = make_comdml(small_registry, max_rounds=3)
        comdml_history = comdml.run()
        baseline = AllReduceDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=3, offload_granularity=9, seed=1),
        )
        baseline_history = baseline.run()
        comdml_round = comdml_history.records[0].duration_seconds
        baseline_round = baseline_history.records[0].duration_seconds
        assert comdml_round < baseline_round


class TestInvalidationBatching:
    """Dynamics events coalesce into ONE planner invalidation per plan."""

    def test_dynamics_burst_flushes_once_at_plan_time(self, small_registry):
        comdml = make_comdml(small_registry, planner="pruned")
        agents = [small_registry.get(agent_id) for agent_id in small_registry.ids]
        comdml.plan_round(0, agents)

        calls = []
        original = comdml.planner.invalidate_topology

        def recording_invalidate(ids):
            calls.append(list(ids))
            return original(ids)

        comdml.planner.invalidate_topology = recording_invalidate

        departed_one, departed_two = agents[-1], agents[-2]
        comdml.on_agent_departure(departed_one)
        arriving = Agent(
            agent_id=99,
            profile=ResourceProfile(1.0, 50.0),
            num_samples=600,
            batch_size=100,
        )
        small_registry.add(arriving)
        comdml.on_agent_arrival(arriving, neighbors=[agents[0].agent_id])
        comdml.on_agent_departure(departed_two)

        # A burst of three events touches the planner zero times...
        assert calls == []
        expected_ids = sorted(
            {departed_one.agent_id, departed_two.agent_id, arriving.agent_id}
        )
        assert comdml._pending_invalidations == set(expected_ids)

        # ...and flushes as exactly one coalesced invalidation at plan time.
        participants = agents[:-2] + [arriving]
        plan = comdml.plan_round(1, participants)
        assert calls == [expected_ids]
        assert comdml._pending_invalidations == set()
        assert plan.num_pairs >= 0

    def test_flush_without_planner_is_a_noop(self, small_registry):
        comdml = make_comdml(small_registry, planner="dense")
        assert comdml.planner is None
        agents = [small_registry.get(agent_id) for agent_id in small_registry.ids]
        comdml.on_agent_departure(agents[-1])
        assert comdml._pending_invalidations == set()
        comdml.plan_round(0, agents[:-1])
