"""Tests for quantized-gradient aggregation integrated into ComDML."""

import pytest

from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.models.resnet import resnet56_spec


class TestAggregationCompression:
    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(aggregation_compression_bits=0)
        with pytest.raises(ValueError):
            ComDMLConfig(aggregation_compression_bits=64)

    def test_compression_reduces_aggregation_time(self, small_registry):
        def run(bits):
            config = ComDMLConfig(
                max_rounds=1,
                offload_granularity=9,
                seed=4,
                aggregation_compression_bits=bits,
            )
            comdml = ComDML(registry=small_registry, spec=resnet56_spec(), config=config)
            record = comdml.run_round(0)
            return record.aggregation_seconds

        uncompressed = run(None)
        compressed = run(8)
        assert compressed < uncompressed

    def test_compression_does_not_change_compute_time(self, small_registry):
        def run(bits):
            config = ComDMLConfig(
                max_rounds=1,
                offload_granularity=9,
                seed=4,
                aggregation_compression_bits=bits,
            )
            comdml = ComDML(registry=small_registry, spec=resnet56_spec(), config=config)
            return comdml.run_round(0).compute_seconds

        assert run(None) == pytest.approx(run(8))
