"""Tests for the ComDML run configuration."""

import pytest

from repro.core.config import ComDMLConfig


class TestComDMLConfig:
    def test_defaults_match_paper(self):
        config = ComDMLConfig()
        assert config.learning_rate == 0.001
        assert config.momentum == 0.9
        assert config.batch_size == 100
        assert config.local_epochs == 1
        assert config.allreduce_algorithm == "halving_doubling"

    def test_invalid_target_accuracy_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(target_accuracy=1.5)

    def test_invalid_participation_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(participation_fraction=-0.1)

    def test_invalid_allreduce_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(allreduce_algorithm="butterfly")

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(max_rounds=0)

    def test_invalid_churn_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(churn_fraction=2.0)

    def test_planner_shards_normalized(self):
        assert ComDMLConfig().planner_shards == "auto"
        assert ComDMLConfig(planner_shards="AUTO").planner_shards == "auto"
        assert ComDMLConfig(planner_shards=4).planner_shards == 4

    @pytest.mark.parametrize("shards", [0, -1, "bogus", "2"])
    def test_invalid_planner_shards_rejected(self, shards):
        with pytest.raises(ValueError):
            ComDMLConfig(planner_shards=shards)

    def test_valid_paper_table2_configuration(self):
        config = ComDMLConfig(
            target_accuracy=0.9,
            churn_fraction=0.2,
            churn_interval_rounds=100,
        )
        assert config.churn_fraction == 0.2
