"""Tests for the greedy decentralized pairing scheduler (Algorithm 1)."""

import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.workload import individual_training_time
from repro.network.link import LinkModel
from repro.network.topology import full_topology, ring_topology


class TestGreedyPairing:
    def test_each_agent_used_at_most_once(self, small_registry, small_link_model, resnet56_profile):
        decisions = greedy_pairing(
            small_registry.agents, small_link_model, resnet56_profile
        )
        used = []
        for decision in decisions:
            used.append(decision.slow_id)
            if decision.fast_id is not None:
                used.append(decision.fast_id)
        assert len(used) == len(set(used))
        assert sorted(used) == sorted(small_registry.ids)

    def test_pairing_never_worse_than_solo(self, small_registry, small_link_model, resnet56_profile):
        decisions = greedy_pairing(
            small_registry.agents, small_link_model, resnet56_profile
        )
        for decision in decisions:
            solo = individual_training_time(
                small_registry.get(decision.slow_id), resnet56_profile, 100
            )
            assert decision.estimate.pair_time <= solo + 1e-9

    def test_makespan_not_worse_than_unbalanced(self, small_registry, small_link_model, resnet56_profile):
        decisions = greedy_pairing(
            small_registry.agents, small_link_model, resnet56_profile
        )
        unbalanced = max(
            individual_training_time(agent, resnet56_profile, 100)
            for agent in small_registry.agents
        )
        assert pairing_makespan(decisions) <= unbalanced + 1e-9

    def test_heterogeneous_population_forms_pairs(self, small_registry, small_link_model, resnet56_profile):
        decisions = greedy_pairing(
            small_registry.agents, small_link_model, resnet56_profile
        )
        assert any(decision.is_offloading for decision in decisions)

    def test_slowest_agent_is_paired_first(self, small_registry, small_link_model, resnet56_profile):
        decisions = greedy_pairing(
            small_registry.agents, small_link_model, resnet56_profile
        )
        slowest = max(
            small_registry.agents,
            key=lambda agent: individual_training_time(agent, resnet56_profile, 100),
        )
        slowest_decision = next(d for d in decisions if d.slow_id == slowest.agent_id)
        assert slowest_decision.is_offloading

    def test_homogeneous_population_trains_solo(self, resnet56_profile):
        agents = [
            Agent(i, ResourceProfile(1.0, 10.0), num_samples=500, batch_size=100)
            for i in range(4)
        ]
        link_model = LinkModel(full_topology(range(4)))
        decisions = greedy_pairing(agents, link_model, resnet56_profile)
        assert all(not decision.is_offloading for decision in decisions)

    def test_disconnected_agents_cannot_pair(self, resnet56_profile):
        agents = [
            Agent(0, ResourceProfile(0.2, 0.0), num_samples=500, batch_size=100),
            Agent(1, ResourceProfile(4.0, 100.0), num_samples=500, batch_size=100),
        ]
        link_model = LinkModel(full_topology(range(2)))
        decisions = greedy_pairing(agents, link_model, resnet56_profile)
        assert all(not decision.is_offloading for decision in decisions)

    def test_topology_restricts_pairing(self, resnet56_profile):
        # Slow agent 0 is only connected to the equally slow agent 1 in a
        # ring, so it cannot reach the fast agent 2.
        agents = [
            Agent(0, ResourceProfile(0.2, 50.0), num_samples=500, batch_size=100),
            Agent(1, ResourceProfile(0.2, 50.0), num_samples=500, batch_size=100),
            Agent(2, ResourceProfile(4.0, 100.0), num_samples=500, batch_size=100),
            Agent(3, ResourceProfile(4.0, 100.0), num_samples=500, batch_size=100),
        ]
        ring = LinkModel(ring_topology([0, 1, 2, 3]))
        full = LinkModel(full_topology([0, 1, 2, 3]))
        ring_decisions = greedy_pairing(agents, ring, resnet56_profile)
        full_decisions = greedy_pairing(agents, full, resnet56_profile)
        assert pairing_makespan(full_decisions) <= pairing_makespan(ring_decisions) + 1e-9

    def test_improvement_threshold_reduces_pairs(self, small_registry, small_link_model, resnet56_profile):
        loose = greedy_pairing(small_registry.agents, small_link_model, resnet56_profile)
        strict = greedy_pairing(
            small_registry.agents,
            small_link_model,
            resnet56_profile,
            improvement_threshold=0.95,
        )
        loose_pairs = sum(1 for d in loose if d.is_offloading)
        strict_pairs = sum(1 for d in strict if d.is_offloading)
        assert strict_pairs <= loose_pairs

    def test_empty_participant_list(self, small_link_model, resnet56_profile):
        assert greedy_pairing([], small_link_model, resnet56_profile) == []
        assert pairing_makespan([]) == 0.0
