"""Tests for split-model profiling."""

import pytest

from repro.core.profiling import profile_architecture


class TestProfileArchitecture:
    def test_default_options_cover_range(self, resnet56):
        profile = profile_architecture(resnet56, granularity=9)
        assert profile.offload_options[0] == 0
        assert max(profile.offload_options) == resnet56.num_layers - 1

    def test_explicit_options_are_sorted_and_include_zero(self, resnet56):
        profile = profile_architecture(resnet56, offload_options=[37, 19, 55])
        assert profile.offload_options == (0, 19, 37, 55)

    def test_relative_times_are_fractions(self, resnet56_profile):
        for option in resnet56_profile.offload_options:
            slow = resnet56_profile.slow_time_factor(option)
            fast = resnet56_profile.fast_time_factor(option)
            assert 0.0 <= slow <= 1.1  # auxiliary head may push slightly above the pure share
            assert 0.0 <= fast <= 1.0

    def test_zero_offload_has_full_slow_share(self, resnet56_profile):
        assert resnet56_profile.slow_time_factor(0) == pytest.approx(1.0)
        assert resnet56_profile.fast_time_factor(0) == 0.0
        assert resnet56_profile.intermediate_bytes(0) == 0.0
        assert resnet56_profile.offloaded_bytes(0) == 0.0

    def test_slow_share_decreases_with_offload(self, resnet56_profile):
        options = resnet56_profile.offload_options
        slow = [resnet56_profile.slow_time_factor(m) for m in options]
        assert all(a >= b - 1e-9 for a, b in zip(slow, slow[1:]))

    def test_fast_share_increases_with_offload(self, resnet56_profile):
        options = resnet56_profile.offload_options
        fast = [resnet56_profile.fast_time_factor(m) for m in options]
        assert all(a <= b + 1e-9 for a, b in zip(fast, fast[1:]))

    def test_shares_roughly_partition_unity(self, resnet56_profile):
        for option in resnet56_profile.offload_options:
            total = resnet56_profile.slow_time_factor(option) + resnet56_profile.fast_time_factor(option)
            # The auxiliary head adds a small overhead above 1 for split models.
            assert 0.99 <= total <= 1.15

    def test_offloaded_bytes_increase_with_offload(self, resnet56_profile):
        options = [m for m in resnet56_profile.offload_options if m > 0]
        offloaded = [resnet56_profile.offloaded_bytes(m) for m in options]
        assert all(a <= b + 1e-9 for a, b in zip(offloaded, offloaded[1:]))

    def test_full_model_bytes_positive(self, resnet56_profile):
        assert resnet56_profile.full_model_bytes > 1e6

    def test_unknown_option_lookup_raises(self, resnet56_profile):
        with pytest.raises(KeyError):
            resnet56_profile.slow_time_factor(7)

    def test_empty_explicit_options_rejected(self, resnet56):
        with pytest.raises(ValueError):
            profile_architecture(resnet56, offload_options=[])

    def test_num_options(self, resnet56):
        profile = profile_architecture(resnet56, offload_options=[0, 9, 18])
        assert profile.num_options == 3

    def test_tiny_spec_profile(self, tiny_spec):
        profile = profile_architecture(tiny_spec, granularity=1)
        assert profile.architecture == "tiny"
        assert profile.num_options == tiny_spec.num_layers


class TestProfileMemoization:
    def test_same_value_spec_returns_cached_profile(self, resnet56):
        from repro.models.resnet import resnet56_spec

        profile_architecture.cache_clear()
        first = profile_architecture(resnet56, granularity=9)
        # A freshly built (but value-equal) spec must hit the cache too.
        assert profile_architecture(resnet56_spec(), granularity=9) is first

    def test_distinct_granularities_are_distinct_entries(self, resnet56):
        profile_architecture.cache_clear()
        assert profile_architecture(resnet56, granularity=9) is not (
            profile_architecture(resnet56, granularity=3)
        )

    def test_explicit_options_key_on_their_values(self, resnet56):
        profile_architecture.cache_clear()
        first = profile_architecture(resnet56, offload_options=[0, 9, 18])
        assert profile_architecture(resnet56, offload_options=(0, 9, 18)) is first
        assert profile_architecture(resnet56, offload_options=[0, 9]) is not first

    def test_cache_clear_forgets(self, resnet56):
        profile_architecture.cache_clear()
        first = profile_architecture(resnet56, granularity=9)
        profile_architecture.cache_clear()
        second = profile_architecture(resnet56, granularity=9)
        assert second is not first
        assert second == first


class TestProfileArrays:
    def test_arrays_mirror_tuples(self, resnet56_profile):
        import numpy as np

        profile = resnet56_profile
        assert np.array_equal(profile.options_array, profile.offload_options)
        assert np.array_equal(profile.slow_time_array, profile.relative_slow_time)
        assert np.array_equal(profile.fast_time_array, profile.relative_fast_time)
        assert np.array_equal(
            profile.intermediate_bytes_array, profile.intermediate_bytes_per_sample
        )
        assert np.array_equal(
            profile.offloaded_bytes_array, profile.offloaded_model_bytes
        )

    def test_arrays_are_cached_and_read_only(self, resnet56_profile):
        import numpy as np

        array = resnet56_profile.slow_time_array
        assert resnet56_profile.slow_time_array is array
        assert array.flags["C_CONTIGUOUS"]
        with pytest.raises(ValueError):
            array[0] = 1.0
