"""Tests for the stateful pairing scheduler."""

import numpy as np
import pytest

from repro.core.scheduler import DecentralizedPairingScheduler


def make_scheduler(small_registry, small_link_model, resnet56_profile, **kwargs):
    return DecentralizedPairingScheduler(
        registry=small_registry,
        link_model=small_link_model,
        profile=resnet56_profile,
        rng=np.random.default_rng(0),
        **kwargs,
    )


class TestScheduler:
    def test_plan_round_returns_decisions_for_everyone(
        self, small_registry, small_link_model, resnet56_profile
    ):
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        decisions = scheduler.plan_round()
        involved = set()
        for decision in decisions:
            involved.add(decision.slow_id)
            if decision.fast_id is not None:
                involved.add(decision.fast_id)
        assert involved == set(small_registry.ids)

    def test_shared_times_refreshed(self, small_registry, small_link_model, resnet56_profile):
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        scheduler.plan_round()
        assert set(scheduler.shared_training_times) == set(small_registry.ids)
        assert all(t > 0 for t in scheduler.shared_training_times.values())

    def test_stats_accumulate(self, small_registry, small_link_model, resnet56_profile):
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        for _ in range(3):
            scheduler.plan_round()
        assert scheduler.stats.rounds == 3
        assert scheduler.stats.makespan_count == 3
        assert scheduler.stats.average_makespan > 0
        assert scheduler.stats.average_pairs_per_round >= 0

    def test_stats_memory_is_constant(self, small_registry, small_link_model, resnet56_profile):
        """Makespans are folded into a running mean, not an unbounded list."""
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        for _ in range(5):
            scheduler.plan_round()
        stats_fields = vars(scheduler.stats)
        assert not any(isinstance(value, list) for value in stats_fields.values())
        assert scheduler.stats.makespan_sum == pytest.approx(
            scheduler.stats.average_makespan * 5
        )

    def test_participation_sampling(self, small_registry, small_link_model, resnet56_profile):
        scheduler = make_scheduler(
            small_registry, small_link_model, resnet56_profile, participation_fraction=0.5
        )
        participants = scheduler.select_participants()
        assert len(participants) == 3

    def test_full_participation_returns_all(self, small_registry, small_link_model, resnet56_profile):
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        assert len(scheduler.select_participants()) == len(small_registry)

    def test_invalid_participation_rejected(self, small_registry, small_link_model, resnet56_profile):
        with pytest.raises(ValueError):
            make_scheduler(
                small_registry,
                small_link_model,
                resnet56_profile,
                participation_fraction=1.2,
            )

    def test_explicit_participants_used(self, small_registry, small_link_model, resnet56_profile):
        scheduler = make_scheduler(small_registry, small_link_model, resnet56_profile)
        subset = small_registry.agents[:3]
        decisions = scheduler.plan_round(subset)
        involved = {d.slow_id for d in decisions} | {
            d.fast_id for d in decisions if d.fast_id is not None
        }
        assert involved <= {agent.agent_id for agent in subset}
