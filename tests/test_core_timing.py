"""Tests for round-timing assembly."""

import pytest

from repro.core.pairing import greedy_pairing
from repro.core.timing import compute_round_timing
from repro.core.workload import individual_training_time


class TestComputeRoundTiming:
    @pytest.fixture
    def decisions(self, small_registry, small_link_model, resnet56_profile):
        return greedy_pairing(small_registry.agents, small_link_model, resnet56_profile)

    def test_total_is_makespan_plus_aggregation(
        self, decisions, small_registry, resnet56_profile
    ):
        timing = compute_round_timing(decisions, small_registry, resnet56_profile)
        assert timing.total_time == pytest.approx(timing.makespan + timing.aggregation_time)
        assert timing.aggregation_time > 0

    def test_makespan_is_max_pair_time(self, decisions, small_registry, resnet56_profile):
        timing = compute_round_timing(decisions, small_registry, resnet56_profile)
        assert timing.makespan == pytest.approx(
            max(pair.pair_time for pair in timing.pair_timings)
        )

    def test_num_pairs_matches_decisions(self, decisions, small_registry, resnet56_profile):
        timing = compute_round_timing(decisions, small_registry, resnet56_profile)
        assert timing.num_pairs == sum(1 for d in decisions if d.is_offloading)

    def test_balanced_round_faster_than_unbalanced(
        self, decisions, small_registry, resnet56_profile
    ):
        timing = compute_round_timing(decisions, small_registry, resnet56_profile)
        unbalanced = max(
            individual_training_time(agent, resnet56_profile, 100)
            for agent in small_registry.agents
        )
        assert timing.makespan <= unbalanced + 1e-9

    def test_idle_time_non_negative(self, decisions, small_registry, resnet56_profile):
        timing = compute_round_timing(decisions, small_registry, resnet56_profile)
        assert timing.total_idle_time >= 0
        assert timing.total_compute_time > 0

    def test_ring_and_halving_doubling_supported(
        self, decisions, small_registry, resnet56_profile
    ):
        ring = compute_round_timing(
            decisions, small_registry, resnet56_profile, allreduce_algorithm="ring"
        )
        hd = compute_round_timing(
            decisions, small_registry, resnet56_profile, allreduce_algorithm="halving_doubling"
        )
        assert ring.aggregation_time > 0 and hd.aggregation_time > 0

    def test_explicit_aggregating_count(self, decisions, small_registry, resnet56_profile):
        small = compute_round_timing(
            decisions, small_registry, resnet56_profile, num_aggregating_agents=2
        )
        large = compute_round_timing(
            decisions, small_registry, resnet56_profile, num_aggregating_agents=64
        )
        assert large.aggregation_time >= small.aggregation_time

    def test_empty_decisions(self, small_registry, resnet56_profile):
        timing = compute_round_timing([], small_registry, resnet56_profile)
        assert timing.makespan == 0.0
        assert timing.num_pairs == 0
