"""Tests for the workload-balancing estimates and the exact solver."""

import pytest

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.workload import (
    best_offload,
    estimate_offload_time,
    exact_min_makespan,
    individual_training_time,
)
from repro.network.link import pairwise_bandwidth
from repro.utils.units import mbps_to_bytes_per_second


class TestIndividualTrainingTime:
    def test_slower_agent_takes_longer(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        assert individual_training_time(slow, resnet56_profile, 100) > individual_training_time(
            fast, resnet56_profile, 100
        )

    def test_scales_with_dataset_size(self, resnet56_profile, two_agents):
        slow, _ = two_agents
        small = individual_training_time(slow, resnet56_profile, 100)
        slow.num_samples *= 2
        assert individual_training_time(slow, resnet56_profile, 100) == pytest.approx(2 * small)


class TestEstimateOffloadTime:
    def test_zero_offload_equals_individual_time(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        estimate = estimate_offload_time(
            slow, fast, 0, resnet56_profile, mbps_to_bytes_per_second(50.0)
        )
        assert estimate.pair_time == pytest.approx(
            max(
                individual_training_time(slow, resnet56_profile, 100),
                individual_training_time(fast, resnet56_profile, 100),
            )
        )
        assert estimate.communication_time == 0.0

    def test_pair_time_is_max_of_chains(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        estimate = estimate_offload_time(
            slow, fast, 27, resnet56_profile, mbps_to_bytes_per_second(50.0)
        )
        assert estimate.pair_time == pytest.approx(
            max(estimate.slow_time, estimate.fast_chain_time)
        )
        assert estimate.idle_time == pytest.approx(
            abs(estimate.slow_time - estimate.fast_chain_time)
        )

    def test_more_bandwidth_never_hurts(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        slow_link = estimate_offload_time(
            slow, fast, 27, resnet56_profile, mbps_to_bytes_per_second(10.0)
        )
        fast_link = estimate_offload_time(
            slow, fast, 27, resnet56_profile, mbps_to_bytes_per_second(100.0)
        )
        assert fast_link.communication_time < slow_link.communication_time
        assert fast_link.pair_time <= slow_link.pair_time

    def test_offloading_reduces_slow_time(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        none = estimate_offload_time(slow, fast, 0, resnet56_profile, mbps_to_bytes_per_second(50.0))
        some = estimate_offload_time(slow, fast, 45, resnet56_profile, mbps_to_bytes_per_second(50.0))
        assert some.slow_time < none.slow_time

    def test_zero_bandwidth_rejected(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        with pytest.raises(ValueError):
            estimate_offload_time(slow, fast, 9, resnet56_profile, 0.0)


class TestBestOffload:
    def test_best_is_minimum_over_options(self, resnet56_profile, two_agents):
        slow, fast = two_agents
        bandwidth = mbps_to_bytes_per_second(50.0)
        best = best_offload(slow, fast, resnet56_profile, bandwidth)
        for option in resnet56_profile.offload_options:
            other = estimate_offload_time(slow, fast, option, resnet56_profile, bandwidth)
            assert best.pair_time <= other.pair_time + 1e-9

    def test_heterogeneous_pair_prefers_offloading(self, resnet56_profile):
        slow = Agent(0, ResourceProfile(0.2, 50.0), num_samples=2_000, batch_size=100)
        fast = Agent(1, ResourceProfile(4.0, 50.0), num_samples=2_000, batch_size=100)
        best = best_offload(slow, fast, resnet56_profile, mbps_to_bytes_per_second(50.0))
        assert best.offloaded_layers > 0
        assert best.pair_time < individual_training_time(slow, resnet56_profile, 100)

    def test_equal_agents_prefer_no_offload(self, resnet56_profile):
        a = Agent(0, ResourceProfile(1.0, 10.0), num_samples=1_000, batch_size=100)
        b = Agent(1, ResourceProfile(1.0, 10.0), num_samples=1_000, batch_size=100)
        best = best_offload(a, b, resnet56_profile, mbps_to_bytes_per_second(10.0))
        # Offloading to an equally slow helper over a slow link cannot beat
        # training alone by much; the best plan keeps (almost) everything local.
        assert best.pair_time <= individual_training_time(a, resnet56_profile, 100) * 1.01


class TestExactSolver:
    def test_exact_beats_or_matches_no_offloading(self, small_registry, resnet56_profile):
        agents = small_registry.agents

        def bandwidth_lookup(a, b):
            return pairwise_bandwidth(a, b)

        makespan, assignment = exact_min_makespan(agents, resnet56_profile, bandwidth_lookup)
        baseline = max(
            individual_training_time(agent, resnet56_profile, 100) for agent in agents
        )
        assert makespan <= baseline + 1e-9
        assert len(assignment) >= len(agents) / 2

    def test_each_agent_appears_once(self, small_registry, resnet56_profile):
        agents = small_registry.agents
        _, assignment = exact_min_makespan(
            agents, resnet56_profile, pairwise_bandwidth
        )
        seen = []
        for slow_id, fast_id, _ in assignment:
            seen.append(slow_id)
            if fast_id is not None:
                seen.append(fast_id)
        assert sorted(seen) == sorted(agent.agent_id for agent in agents)

    def test_population_limit_enforced(self, resnet56_profile, rng):
        from repro.agents.registry import AgentRegistry

        registry = AgentRegistry.build(num_agents=12, rng=rng)
        with pytest.raises(ValueError):
            exact_min_makespan(
                registry.agents, resnet56_profile, pairwise_bandwidth, max_agents=10
            )
