"""Tests for the incremental CSR topology engine (`repro.core.csr`).

The engine's contract is *structural equivalence*: however a topology was
reached — arrivals appending rows, departures tombstoning them, rewires
patching columns in place, compactions folding deltas back — the links it
serves must be byte-identical to a from-scratch build of the same graph.
The Hypothesis property here drives random arrival/departure/rewire event
sequences against that contract, both on the raw structure and through
every planner tier (pruned in-process, sharded with 1/2/4 workers).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.csr import IncrementalCsr
from repro.core.planner import PlannerStats, PrunedPlanner
from repro.core.profiling import profile_architecture
from repro.core.shard import ShardedPlanner
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import Topology, random_k_topology, ring_topology

PROFILE = profile_architecture(resnet56_spec(), granularity=9)

#: Resource palette the event generator draws arriving agents from.
AGENT_PALETTE = (
    (4.0, 50.0, 1_200, 100),
    (2.0, 20.0, 900, 100),
    (1.0, 100.0, 1_500, 50),
    (0.5, 10.0, 600, 128),
)

EVENT_SEQUENCES = st.lists(
    st.tuples(
        st.sampled_from(["arrive", "depart", "rewire"]),
        st.integers(min_value=0, max_value=2**31 - 1),
    ),
    min_size=1,
    max_size=8,
)


def _make_agent(agent_id: int, rng: np.random.Generator) -> Agent:
    cpu, bandwidth, samples, batch = AGENT_PALETTE[
        int(rng.integers(len(AGENT_PALETTE)))
    ]
    return Agent(
        agent_id=agent_id,
        profile=ResourceProfile(cpu, bandwidth),
        num_samples=samples,
        batch_size=batch,
    )


def _apply_event(
    topology: Topology,
    agents: dict[int, Agent],
    next_id: int,
    event: tuple[str, int],
) -> tuple[int, list[int]]:
    """Mutate the topology (journaling as real dynamics do).

    Returns ``(next_id, touched_ids)``.  Rewires are expressed as the
    runtime expresses them — departure plus re-arrival under the same id
    with a fresh neighbour set — so the journal sees remove_node /
    add_node / add_edge interleavings, not just clean arrivals.
    """
    kind, seed = event
    rng = np.random.default_rng(seed)
    nodes = sorted(topology.nodes)
    if kind == "arrive":
        count = int(rng.integers(1, min(3, len(nodes)) + 1))
        chosen = rng.choice(len(nodes), size=count, replace=False)
        neighbors = [nodes[int(index)] for index in chosen]
        topology.add_agent(next_id, neighbors)
        agents[next_id] = _make_agent(next_id, rng)
        return next_id + 1, [next_id]
    if kind == "depart" and len(nodes) > 3:
        victim = nodes[int(rng.integers(len(nodes)))]
        topology.remove_agent(victim)
        agents.pop(victim, None)
        return next_id, [victim]
    # Rewire (also the fallback when the graph is too small to shrink).
    target = nodes[int(rng.integers(len(nodes)))]
    others = [node for node in nodes if node != target]
    count = int(rng.integers(1, min(3, len(others)) + 1))
    chosen = rng.choice(len(others), size=count, replace=False)
    topology.remove_agent(target)
    topology.add_agent(target, [others[int(index)] for index in chosen])
    return next_id, [target]


def _structure(csr: IncrementalCsr, ids: list[int]) -> tuple:
    rows, cols = csr.links_for(csr.translation(ids))
    return csr.counts(), rows.tolist(), cols.tolist()


class TestIncrementalStructure:
    """Edited structure ≡ from-scratch build, after every single event."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        events=EVENT_SEQUENCES,
        topology_seed=st.integers(min_value=0, max_value=50),
        ring=st.booleans(),
    )
    def test_edits_match_fresh_rebuild(self, events, topology_seed, ring):
        ids = list(range(6))
        if ring:
            topology = ring_topology(ids)
        else:
            topology = random_k_topology(
                ids, 2, np.random.default_rng(topology_seed)
            )
        agents: dict[int, Agent] = {}
        csr = IncrementalCsr(topology)
        assert csr.sync() is None  # first sync is the initial build
        next_id = len(ids)
        for event in events:
            next_id, _ = _apply_event(topology, agents, next_id, event)
            affected = csr.sync()
            current = sorted(topology.nodes)
            fresh = IncrementalCsr(topology)
            fresh.rebuild()
            assert _structure(csr, current) == _structure(fresh, current)
            if affected is not None:
                # Edits never report nodes that no longer exist *and*
                # never miss one whose row changed: a second sync sees
                # nothing new.
                assert csr.sync() == set()

    def test_journal_truncation_forces_rebuild(self):
        ids = list(range(4))
        topology = ring_topology(ids)
        stats = PlannerStats()
        csr = IncrementalCsr(topology, stats=stats)
        csr.sync()
        from repro.network import topology as topology_module

        events = (topology_module.MAX_JOURNAL_EVENTS // 2) + 1
        for index in range(events):
            topology.add_agent(100 + index, [0])
            topology.remove_agent(100 + index)
        # Overflow the journal window past the cursor.
        assert topology.events_since(csr.cursor) is None
        assert csr.sync() is None
        assert stats.csr_rebuilds >= 2
        fresh = IncrementalCsr(topology)
        fresh.rebuild()
        current = sorted(topology.nodes)
        assert _structure(csr, current) == _structure(fresh, current)


class TestCompaction:
    """Lazy delta/tombstone fold-back: trigger, accounting, equivalence."""

    def _staged_topology(self):
        topology = random_k_topology(
            list(range(24)), 3, np.random.default_rng(7)
        )
        return topology

    def test_deltas_stay_staged_below_threshold(self):
        topology = self._staged_topology()
        stats = PlannerStats()
        csr = IncrementalCsr(topology, compaction_threshold=100.0, stats=stats)
        csr.sync()
        epoch = csr.epoch
        topology.add_agent(500, [0, 1, 2])
        csr.sync()
        assert csr.staged_deltas > 0
        assert csr.epoch == epoch  # no compaction, no rebuild
        assert stats.csr_compactions == 0

    def test_compaction_triggers_at_threshold_and_preserves_structure(self):
        topology = self._staged_topology()
        stats = PlannerStats()
        csr = IncrementalCsr(topology, compaction_threshold=0.01, stats=stats)
        csr.sync()
        epoch = csr.epoch
        for arrival in range(6):
            topology.add_agent(500 + arrival, [0, 1, 2])
        csr.sync()
        assert stats.csr_compactions >= 1
        assert csr.staged_deltas == 0
        assert csr.epoch > epoch
        fresh = IncrementalCsr(topology)
        fresh.rebuild()
        current = sorted(topology.nodes)
        assert _structure(csr, current) == _structure(fresh, current)
        # Compaction must not have gone through the O(E) rebuild path.
        assert stats.csr_rebuilds == 1


def _participants(agents: dict[int, Agent], topology: Topology) -> list[Agent]:
    return [agents[agent_id] for agent_id in sorted(topology.nodes)]


class TestPlannerTiersUnderEvents:
    """Incremental planners over edited CSR ≡ from-scratch planners.

    The persistent planner applies every wiring change as journal edits
    (through ``invalidate_topology``, exactly as the ComDML runtime
    flushes dynamics); the reference planner is built from scratch on the
    mutated graph each round.  Decisions and broadcast τ̂ maps must be
    byte-identical at full candidate budget for the pruned tier and for
    the sharded tier at 1, 2, and 4 workers.
    """

    @pytest.mark.parametrize("shards", [None, 1, 2, 4])
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        events=EVENT_SEQUENCES,
        topology_seed=st.integers(min_value=0, max_value=20),
    )
    def test_event_sequences_match_from_scratch(
        self, shards, events, topology_seed
    ):
        ids = list(range(6))
        topology = random_k_topology(
            ids, 2, np.random.default_rng(topology_seed)
        )
        rng = np.random.default_rng(topology_seed + 1)
        agents = {agent_id: _make_agent(agent_id, rng) for agent_id in ids}
        link_model = LinkModel(topology)
        if shards is None:
            planner = PrunedPlanner(PROFILE, link_model, top_k=32)
        else:
            planner = ShardedPlanner(
                PROFILE,
                link_model,
                top_k=32,
                shards=shards,
                shard_min_population=0,
            )
        try:
            planner.plan(_participants(agents, topology))
            next_id = len(ids)
            for event in events:
                next_id, touched = _apply_event(
                    topology, agents, next_id, event
                )
                planner.invalidate_topology(touched)
                participants = _participants(agents, topology)
                decisions, taus = planner.plan(participants)
                reference = PrunedPlanner(PROFILE, link_model, top_k=32)
                fresh_decisions, fresh_taus = reference.plan(participants)
                assert decisions == fresh_decisions
                assert taus == fresh_taus
        finally:
            planner.close()


class TestDoubleBufferDeterminism:
    """Overlapping dirty sets across buffer flips stay deterministic.

    Consecutive rounds churn overlapping agent subsets, so the parent
    publishes each round's dirty rows and candidate links into alternating
    shared-memory buffers while the previous round's inputs are still
    mapped.  Every round must match a from-scratch planner on the same
    mutated population — a stale or cross-wired buffer would diverge.
    """

    def test_overlapping_churn_rounds_match_fresh_planner(self):
        rng = np.random.default_rng(11)
        ids = list(range(16))
        topology = random_k_topology(ids, 3, rng)
        agents = {agent_id: _make_agent(agent_id, rng) for agent_id in ids}
        link_model = LinkModel(topology)
        planner = ShardedPlanner(
            PROFILE,
            link_model,
            top_k=15,
            shards=2,
            shard_min_population=0,
        )
        try:
            participants = _participants(agents, topology)
            planner.plan(participants)
            buffers_seen = set()
            for round_index in range(4):
                # Window slides by 2 with width 6: 4 agents overlap the
                # previous round's dirty set.
                for index in range(round_index * 2, round_index * 2 + 6):
                    agent = agents[ids[index % len(ids)]]
                    cpu = float(1.0 + ((round_index + index) % 4))
                    agent.update_profile(
                        ResourceProfile(cpu, agent.profile.bandwidth_mbps)
                    )
                decisions, taus = planner.plan(participants)
                buffers_seen.add(planner._back_buffer)
                reference = PrunedPlanner(PROFILE, link_model, top_k=15)
                fresh_decisions, fresh_taus = reference.plan(participants)
                assert decisions == fresh_decisions
                assert taus == fresh_taus
            assert planner.shard_stats.sharded_rounds >= 4
            # The flip actually alternated and both buffer generations
            # were published.
            assert buffers_seen == {0, 1}
            assert {"rows0", "rows1", "links0", "links1"} <= set(
                planner._runtime.segments
            )
        finally:
            planner.close()
