"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split


def make_dataset(n=20, d=4, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, d)),
        labels=rng.integers(0, classes, size=n),
        num_classes=classes,
        name="test",
    )


class TestDataset:
    def test_length_and_features(self):
        dataset = make_dataset(n=15, d=6)
        assert len(dataset) == 15
        assert dataset.num_features == 6

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2, 2)), np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int), 2)

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)

    def test_labels_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 3)

    def test_subset(self):
        dataset = make_dataset(n=10)
        subset = dataset.subset(np.array([0, 2, 4]))
        assert len(subset) == 3
        assert np.array_equal(subset.features[1], dataset.features[2])

    def test_subset_copies_data(self):
        dataset = make_dataset(n=5)
        subset = dataset.subset(np.array([0]))
        subset.features[0, 0] = 999.0
        assert dataset.features[0, 0] != 999.0

    def test_class_counts(self):
        dataset = Dataset(np.zeros((4, 2)), np.array([0, 0, 1, 2]), 4)
        assert np.array_equal(dataset.class_counts(), [2, 1, 1, 0])


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        train, test = train_test_split(make_dataset(n=100), 0.2, rng)
        assert len(train) == 80 and len(test) == 20

    def test_split_disjoint_and_complete(self, rng):
        dataset = make_dataset(n=50)
        dataset.features[:, 0] = np.arange(50)  # make rows identifiable
        train, test = train_test_split(dataset, 0.3, rng)
        seen = np.concatenate([train.features[:, 0], test.features[:, 0]])
        assert sorted(seen.tolist()) == list(range(50))

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), 1.5, rng)
