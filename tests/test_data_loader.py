"""Tests for the batch loader."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.loader import BatchLoader


def make_dataset(n=25):
    return Dataset(
        features=np.arange(n, dtype=float)[:, None],
        labels=np.zeros(n, dtype=int),
        num_classes=2,
    )


class TestBatchLoader:
    def test_number_of_batches(self):
        loader = BatchLoader(make_dataset(25), batch_size=10, shuffle=False)
        assert len(loader) == 3
        assert len(list(loader)) == 3

    def test_drop_last(self):
        loader = BatchLoader(make_dataset(25), batch_size=10, shuffle=False, drop_last=True)
        assert len(loader) == 2
        batches = list(loader)
        assert all(batch[0].shape[0] == 10 for batch in batches)

    def test_covers_all_samples(self):
        loader = BatchLoader(make_dataset(23), batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        seen = np.concatenate([features[:, 0] for features, _ in loader])
        assert sorted(seen.tolist()) == list(range(23))

    def test_shuffle_changes_order(self):
        dataset = make_dataset(30)
        unshuffled = np.concatenate(
            [f[:, 0] for f, _ in BatchLoader(dataset, batch_size=30, shuffle=False)]
        )
        shuffled = np.concatenate(
            [
                f[:, 0]
                for f, _ in BatchLoader(
                    dataset, batch_size=30, shuffle=True, rng=np.random.default_rng(1)
                )
            ]
        )
        assert not np.array_equal(unshuffled, shuffled)

    def test_empty_dataset_yields_nothing(self):
        empty = Dataset(np.zeros((0, 3)), np.zeros(0, dtype=int), 2)
        loader = BatchLoader(empty, batch_size=4)
        assert len(loader) == 0
        assert list(loader) == []

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BatchLoader(make_dataset(), batch_size=0)

    def test_labels_follow_features(self):
        dataset = Dataset(
            features=np.arange(10, dtype=float)[:, None],
            labels=np.arange(10, dtype=int) % 2,
            num_classes=2,
        )
        loader = BatchLoader(dataset, batch_size=4, shuffle=True, rng=np.random.default_rng(2))
        for features, labels in loader:
            assert np.array_equal(labels, features[:, 0].astype(int) % 2)
