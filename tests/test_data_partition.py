"""Tests for federated data partitioning."""

import numpy as np
import pytest

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_distribution,
    partition_sizes,
)


class TestPartitionSizes:
    def test_equal_shares(self):
        assert partition_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        sizes = partition_sizes(10, 3)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_imbalanced_shares_sum_to_total(self, rng):
        sizes = partition_sizes(1_000, 8, rng=rng, imbalance=0.5)
        assert sum(sizes) == 1_000
        assert all(size >= 1 for size in sizes)

    def test_imbalance_increases_spread(self, rng):
        balanced = partition_sizes(1_000, 8)
        skewed = partition_sizes(1_000, 8, rng=rng, imbalance=1.0)
        assert max(skewed) - min(skewed) > max(balanced) - min(balanced)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            partition_sizes(3, 5)

    def test_negative_imbalance_rejected(self, rng):
        with pytest.raises(ValueError):
            partition_sizes(100, 4, rng=rng, imbalance=-1.0)


class TestIIDPartition:
    def test_covers_without_overlap(self, rng):
        labels = rng.integers(0, 10, size=200)
        shards = iid_partition(labels, 4, rng)
        combined = np.concatenate(shards)
        assert len(combined) == 200
        assert len(np.unique(combined)) == 200

    def test_respects_custom_sizes(self, rng):
        labels = np.zeros(100, dtype=int)
        shards = iid_partition(labels, 3, rng, sizes=[10, 20, 30])
        assert [len(shard) for shard in shards] == [10, 20, 30]

    def test_label_distribution_roughly_uniform(self, rng):
        labels = rng.integers(0, 10, size=5_000)
        shards = iid_partition(labels, 5, rng)
        histogram = label_distribution(labels, shards, 10)
        proportions = histogram / histogram.sum(axis=1, keepdims=True)
        assert np.all(np.abs(proportions - 0.1) < 0.05)

    def test_oversubscription_rejected(self, rng):
        with pytest.raises(ValueError):
            iid_partition(np.zeros(10, dtype=int), 2, rng, sizes=[8, 8])

    def test_wrong_size_count_rejected(self, rng):
        with pytest.raises(ValueError):
            iid_partition(np.zeros(10, dtype=int), 2, rng, sizes=[5])


class TestDirichletPartition:
    def test_covers_without_overlap(self, rng):
        labels = rng.integers(0, 10, size=500)
        shards = dirichlet_partition(labels, 5, rng, alpha=0.5)
        combined = np.concatenate(shards)
        assert len(combined) == 500
        assert len(np.unique(combined)) == 500

    def test_no_agent_left_empty(self, rng):
        labels = rng.integers(0, 10, size=300)
        shards = dirichlet_partition(labels, 10, rng, alpha=0.1)
        assert all(len(shard) >= 1 for shard in shards)

    def test_low_alpha_more_skewed_than_high_alpha(self):
        labels = np.random.default_rng(0).integers(0, 10, size=5_000)
        skewed = dirichlet_partition(labels, 10, np.random.default_rng(1), alpha=0.1)
        uniform = dirichlet_partition(labels, 10, np.random.default_rng(1), alpha=100.0)

        def skew_score(shards):
            histogram = label_distribution(labels, shards, 10).astype(float)
            histogram = histogram / np.maximum(histogram.sum(axis=1, keepdims=True), 1)
            return float(np.std(histogram))

        assert skew_score(skewed) > skew_score(uniform)

    def test_deterministic_given_rng(self):
        labels = np.random.default_rng(0).integers(0, 5, size=200)
        a = dirichlet_partition(labels, 4, np.random.default_rng(3), alpha=0.5)
        b = dirichlet_partition(labels, 4, np.random.default_rng(3), alpha=0.5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_invalid_alpha_rejected(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, rng, alpha=0.0)

    def test_too_many_agents_rejected(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(3, dtype=int), 5, rng)
