"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    cifar10_like,
    cifar100_like,
    cinic10_like,
    load_preset,
    make_synthetic_classification,
)


class TestSyntheticGeneration:
    def test_sizes_and_classes(self):
        train, test = cifar10_like(train_samples=500, test_samples=100)
        assert len(train) == 500 and len(test) == 100
        assert train.num_classes == 10

    def test_cifar100_has_100_classes(self):
        train, _ = cifar100_like(train_samples=400, test_samples=100)
        assert train.num_classes == 100

    def test_cinic_is_larger_by_default(self):
        assert cinic10_like()[0].num_classes == 10

    def test_deterministic_given_seed(self):
        a, _ = cifar10_like(train_samples=50, test_samples=10, seed=7)
        b, _ = cifar10_like(train_samples=50, test_samples=10, seed=7)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a, _ = cifar10_like(train_samples=50, test_samples=10, seed=1)
        b, _ = cifar10_like(train_samples=50, test_samples=10, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_all_classes_present_in_large_sample(self):
        train, _ = cifar10_like(train_samples=2_000, test_samples=100)
        assert set(np.unique(train.labels)) == set(range(10))

    def test_task_is_learnable_by_nearest_centroid(self):
        # A trivial nearest-class-centroid classifier must beat chance by a
        # wide margin, otherwise time-to-accuracy experiments are meaningless.
        train, test = cifar10_like(train_samples=2_000, test_samples=500, seed=3)
        centroids = np.stack(
            [train.features[train.labels == c].mean(axis=0) for c in range(10)]
        )
        distances = np.linalg.norm(
            test.features[:, None, :] - centroids[None, :, :], axis=2
        )
        accuracy = float((distances.argmin(axis=1) == test.labels).mean())
        assert accuracy > 0.5

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(
                name="bad",
                num_classes=0,
                num_features=8,
                train_samples=10,
                test_samples=10,
                class_separation=1.0,
            )


class TestPresets:
    def test_load_preset_by_name(self):
        train, _ = load_preset("cifar10", train_samples=100, test_samples=50)
        assert train.num_classes == 10

    def test_load_preset_normalises_name(self):
        train, _ = load_preset("CIFAR-100-like", train_samples=100, test_samples=50)
        assert train.num_classes == 100

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            load_preset("imagenet")
