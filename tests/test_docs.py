"""The docs stay healthy: links resolve and runnable examples execute."""

import importlib.util
from pathlib import Path

TOOL_PATH = Path(__file__).parent.parent / "tools" / "check_docs.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_docs", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    tool = load_tool()
    names = {path.name for path in tool.doc_files()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "scenarios.md" in names


def test_links_resolve_and_doctests_pass(capsys):
    tool = load_tool()
    assert tool.main() == 0
    assert "docs OK" in capsys.readouterr().out


def test_docs_contain_runnable_fences():
    """At least one fenced example per doc area is actually executed."""
    tool = load_tool()
    total = 0
    for path in tool.doc_files():
        count, errors = tool.run_doctests(path)
        assert not errors
        total += count
    assert total >= 3
