"""Tests for schedule generation (Poisson), JSON round-trips, and arrival
attachment policies (full / ring / random-k)."""

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.models.resnet import resnet56_spec
from repro.network.topology import full_topology, ring_topology
from repro.runtime.dynamics import (
    ArrivalAttachment,
    DynamicsEvent,
    DynamicsSchedule,
)


def new_agent(agent_id: int, cpu: float = 4.0, bandwidth: float = 100.0) -> Agent:
    return Agent(
        agent_id=agent_id,
        profile=ResourceProfile(cpu, bandwidth),
        num_samples=500,
        batch_size=100,
    )


class TestPoissonGenerator:
    def test_deterministic_for_same_seed(self):
        kwargs = dict(
            horizon=50_000.0,
            arrival_rate=1 / 4_000.0,
            departure_rate=1 / 8_000.0,
            seed=11,
            departure_candidates=(0, 1, 2, 3),
        )
        first = DynamicsSchedule.poisson(**kwargs)
        second = DynamicsSchedule.poisson(**kwargs)
        assert [e.time for e in first] == [e.time for e in second]
        assert [e.kind for e in first] == [e.kind for e in second]

    def test_different_seed_different_schedule(self):
        kwargs = dict(horizon=50_000.0, arrival_rate=1 / 4_000.0)
        first = DynamicsSchedule.poisson(seed=0, **kwargs)
        second = DynamicsSchedule.poisson(seed=1, **kwargs)
        assert [e.time for e in first] != [e.time for e in second]

    def test_events_within_horizon(self):
        schedule = DynamicsSchedule.poisson(
            horizon=10_000.0,
            arrival_rate=1 / 1_000.0,
            departure_rate=1 / 2_000.0,
            seed=5,
            departure_candidates=(0, 1),
        )
        assert all(0.0 <= event.time < 10_000.0 for event in schedule)

    def test_each_agent_departs_at_most_once(self):
        schedule = DynamicsSchedule.poisson(
            horizon=100_000.0,
            departure_rate=1 / 2_000.0,
            seed=2,
            departure_candidates=(0, 1, 2),
        )
        departures = [e.agent_id for e in schedule if e.kind == "departure"]
        assert len(departures) == len(set(departures))
        assert set(departures) <= {0, 1, 2}

    def test_departures_only_target_present_agents(self):
        schedule = DynamicsSchedule.poisson(
            horizon=80_000.0,
            arrival_rate=1 / 5_000.0,
            departure_rate=1 / 5_000.0,
            seed=9,
            id_start=100,
        )
        arrival_times = {
            e.agent.agent_id: e.time for e in schedule if e.kind == "arrival"
        }
        for event in schedule:
            if event.kind == "departure":
                assert event.agent_id in arrival_times
                assert arrival_times[event.agent_id] < event.time

    def test_arrival_ids_and_attachment(self):
        schedule = DynamicsSchedule.poisson(
            horizon=30_000.0,
            arrival_rate=1 / 3_000.0,
            seed=4,
            id_start=500,
            samples_per_agent=250,
            attachment="random-k",
        )
        arrivals = [e for e in schedule if e.kind == "arrival"]
        assert arrivals, "expected at least one arrival at this rate"
        assert [e.agent.agent_id for e in arrivals] == [
            500 + i for i in range(len(arrivals))
        ]
        assert all(e.agent.num_samples == 250 for e in arrivals)
        assert all(e.attachment.policy == "random-k" for e in arrivals)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicsSchedule.poisson(horizon=0.0, arrival_rate=1.0)
        with pytest.raises(ValueError):
            DynamicsSchedule.poisson(horizon=10.0, arrival_rate=-1.0)


class TestScheduleJson:
    def build(self) -> DynamicsSchedule:
        schedule = DynamicsSchedule()
        schedule.arrival(100.0, new_agent(7), attachment="ring")
        schedule.arrival(150.0, new_agent(8), neighbors=(0, 1))
        schedule.departure(300.0, agent_id=2)
        schedule.churn(50.0, fraction=0.4)
        schedule.churn(400.0, agent_ids=(1, 3))
        return schedule

    def test_round_trip_preserves_events(self):
        original = self.build()
        restored = DynamicsSchedule.from_json(original.to_json())
        assert len(restored) == len(original)
        for before, after in zip(original, restored):
            assert before.time == after.time
            assert before.kind == after.kind
            assert before.agent_id == after.agent_id
            assert before.fraction == after.fraction
            assert before.agent_ids == after.agent_ids
            assert before.neighbors == after.neighbors
            assert before.attachment == after.attachment
            if before.kind == "arrival":
                assert before.agent.agent_id == after.agent.agent_id
                assert before.agent.profile == after.agent.profile
                assert before.agent.num_samples == after.agent.num_samples

    def test_loaded_agents_are_fresh_objects(self):
        original = self.build()
        restored = DynamicsSchedule.from_json(original.to_json())
        originals = {e.agent.agent_id: e.agent for e in original if e.agent}
        for event in restored:
            if event.agent is not None:
                assert event.agent is not originals[event.agent.agent_id]

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "schedules" / "flash.json"
        original = self.build()
        original.save(path)
        loaded = DynamicsSchedule.load(path)
        assert [e.kind for e in loaded] == [e.kind for e in original]

    def test_poisson_survives_round_trip(self):
        schedule = DynamicsSchedule.poisson(
            horizon=20_000.0,
            arrival_rate=1 / 2_000.0,
            departure_rate=1 / 4_000.0,
            seed=3,
            departure_candidates=(0, 1),
            attachment=ArrivalAttachment(policy="random-k", k=3, seed=3),
        )
        restored = DynamicsSchedule.from_json(schedule.to_json())
        assert [e.time for e in restored] == [e.time for e in schedule]
        assert [e.kind for e in restored] == [e.kind for e in schedule]


class TestAttachmentPolicies:
    def test_full_attaches_to_everyone(self):
        topology = full_topology([0, 1, 2])
        neighbors = topology.attach_agent(9, policy="full")
        assert neighbors == [0, 1, 2]

    def test_ring_splices_wrap_edge(self):
        topology = ring_topology([0, 1, 2, 3])
        assert topology.are_connected(0, 3)
        neighbors = topology.attach_agent(9, policy="ring")
        assert neighbors == [0, 3]
        assert not topology.are_connected(0, 3)
        # Every node keeps ring degree 2.
        assert all(topology.degree(node) == 2 for node in topology.nodes)

    def test_random_k_samples_k_neighbors(self):
        topology = full_topology(list(range(8)))
        neighbors = topology.attach_agent(
            99, policy="random-k", k=3, rng=np.random.default_rng(0)
        )
        assert len(neighbors) == 3
        assert set(neighbors) <= set(range(8))

    def test_random_k_requires_rng(self):
        topology = full_topology([0, 1, 2])
        with pytest.raises(ValueError, match="rng"):
            topology.attach_agent(9, policy="random-k")

    def test_unknown_policy_rejected(self):
        topology = full_topology([0, 1, 2])
        with pytest.raises(ValueError, match="unknown attachment policy"):
            topology.attach_agent(9, policy="star")

    def test_explicit_neighbors_override_policy(self):
        topology = full_topology([0, 1, 2])
        neighbors = topology.attach_agent(9, policy="ring", neighbors=(1,))
        assert neighbors == [1]

    def test_attachment_validation(self):
        with pytest.raises(ValueError):
            ArrivalAttachment(policy="star")
        with pytest.raises(ValueError):
            DynamicsEvent(
                time=1.0,
                kind="departure",
                agent_id=1,
                attachment=ArrivalAttachment(),
            )

    def test_rng_for_is_deterministic(self):
        attachment = ArrivalAttachment(policy="random-k", k=2, seed=5)
        a = attachment.rng_for(7).integers(1 << 30)
        b = attachment.rng_for(7).integers(1 << 30)
        assert a == b


class TestArrivalWiringEndToEnd:
    def make_trainer(self, schedule: DynamicsSchedule) -> ComDML:
        registry = AgentRegistry.build(
            num_agents=5,
            rng=np.random.default_rng(1),
            samples_per_agent=400,
            batch_size=100,
        )
        return ComDML(
            registry=registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=3, offload_granularity=9, seed=3),
            dynamics=schedule,
        )

    def test_random_k_arrival_gets_k_links(self):
        schedule = DynamicsSchedule()
        schedule.arrival(
            0.0,
            new_agent(50),
            attachment=ArrivalAttachment(policy="random-k", k=2, seed=0),
        )
        trainer = self.make_trainer(schedule)
        trainer.run()
        assert trainer.topology.degree(50) == 2

    def test_ring_arrival_gets_two_links(self):
        schedule = DynamicsSchedule()
        schedule.arrival(0.0, new_agent(51), attachment="ring")
        trainer = self.make_trainer(schedule)
        trainer.run()
        assert trainer.topology.degree(51) == 2

    def test_default_arrival_still_fully_connected(self):
        schedule = DynamicsSchedule()
        schedule.arrival(0.0, new_agent(52))
        trainer = self.make_trainer(schedule)
        trainer.run()
        assert trainer.topology.degree(52) == 5
