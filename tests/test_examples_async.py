"""Fast test exercising the examples/async_stragglers.py demo."""

import importlib.util
from pathlib import Path

EXAMPLE_PATH = Path(__file__).parent.parent / "examples" / "async_stragglers.py"


def load_example():
    spec = importlib.util.spec_from_file_location("async_stragglers", EXAMPLE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_example_runs_all_modes_quickly():
    example = load_example()
    results = example.run_modes(max_rounds=4, seed=1)
    assert set(results) == {"sync", "semi-sync", "async"}
    for mode, (history, trace) in results.items():
        assert len(history) == 4, mode
        assert trace.kind_counts()["round_end"] == 4, mode

    # Semi-sync under an aggressive quorum drops stragglers and, per round,
    # never spends longer in the local phase than the full barrier.
    sync_history, _ = results["sync"]
    semi_history, semi_trace = results["semi-sync"]
    assert semi_trace.of_kind("quorum_reached")
    for sync_record, semi_record in zip(sync_history.records, semi_history.records):
        assert semi_record.compute_seconds <= sync_record.compute_seconds + 1e-9

    # Async gossips one aggregation per completed unit.
    _, async_trace = results["async"]
    assert len(async_trace.of_kind("aggregation")) == len(
        async_trace.of_kind("unit_complete")
    )
