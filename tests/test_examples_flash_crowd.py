"""Fast test exercising the examples/flash_crowd.py demo.

Acceptance anchor for the dynamics subsystem: the example must run under
all three execution modes, and at least one mid-round churn event must
land while work is in flight (visible as ``unit_repriced`` trace events).
"""

import importlib.util
from pathlib import Path

EXAMPLE_PATH = Path(__file__).parent.parent / "examples" / "flash_crowd.py"


def load_example():
    spec = importlib.util.spec_from_file_location("flash_crowd", EXAMPLE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_flash_crowd_runs_all_modes_with_in_flight_churn():
    example = load_example()
    results = example.run_modes(max_rounds=4, seed=0)
    assert set(results) == {"sync", "semi-sync", "async"}

    for mode, (history, trace) in results.items():
        assert len(history) == 4, mode
        counts = trace.kind_counts()
        assert counts["round_end"] == 4, mode
        # The staggered wave joined and the departure happened.
        assert counts.get("arrival", 0) >= 1, mode
        # The first churn event is timed before the earliest unit completion
        # of round 0, so it must land while work is in flight and re-cost
        # the affected units — in every execution mode.
        scheduled_churn = [
            e
            for e in trace.of_kind("churn")
            if e.detail and e.detail.get("source") == "schedule"
        ]
        assert scheduled_churn, mode
        assert counts.get("unit_repriced", 0) >= 1, (
            f"no in-flight re-cost in mode {mode}"
        )
        # Re-costing happened strictly inside a round: after its round_start,
        # before its round_end.
        round_bounds = {
            e.round_index: e.timestamp for e in trace.of_kind("round_start")
        }
        round_ends = {
            e.round_index: e.timestamp for e in trace.of_kind("round_end")
        }
        for event in trace.of_kind("unit_repriced"):
            assert round_bounds[event.round_index] < event.timestamp
            assert event.timestamp < round_ends[event.round_index]
        # The trace stays chronological through all the perturbations.
        timestamps = [event.timestamp for event in trace]
        assert timestamps == sorted(timestamps), mode

    # Arrivals make the flash-crowd helpers pairable: at least one later
    # unit involves an agent id that did not exist at the start.
    _, sync_trace = results["sync"]
    assert any(
        any(agent_id >= 6 for agent_id in e.agent_ids)
        for e in sync_trace.of_kind("unit_complete")
    )


def test_flash_crowd_main_prints_summary(capsys):
    example = load_example()
    example.main()
    out = capsys.readouterr().out
    assert "flash crowd" in out
    assert "repriced in flight" in out
    assert "timeline" in out
