"""Tests for the declarative campaign engine (spec, cache, executor)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.campaign import (
    CampaignCache,
    CampaignExecutor,
    CampaignSpec,
    cell_key,
    execute_campaign,
    register_cell_runner,
    resolve_cache_dir,
    resolve_runner,
)
from repro.experiments import comparison, table2
from repro.experiments.reporting import (
    campaign_summary,
    execution_report,
    format_campaign_summary,
)


def tiny_spec(**base_overrides) -> CampaignSpec:
    """A cheap two-cell campaign over the AllReduce ablation runner."""
    base = {"bandwidth_mbps": 10.0}
    base.update(base_overrides)
    return CampaignSpec.create(
        name="tiny",
        runner="ablation-allreduce",
        axes={"num_agents": (4, 8)},
        base=base,
    )


class TestSpec:
    def test_expand_is_nested_loop_order(self):
        spec = CampaignSpec.create(
            name="grid",
            runner="ablation-allreduce",
            axes={"a": (1, 2), "b": ("x", "y", "z")},
            base={"c": 0},
        )
        cells = spec.expand()
        assert spec.num_cells == len(cells) == 6
        assert [(cell["a"], cell["b"]) for cell in cells] == [
            (1, "x"), (1, "y"), (1, "z"), (2, "x"), (2, "y"), (2, "z"),
        ]
        assert all(cell["c"] == 0 for cell in cells)

    def test_axis_overrides_base(self):
        spec = CampaignSpec.create(
            name="o", runner="r", axes={"a": (1,)}, base={"a": 9}
        )
        assert spec.expand()[0]["a"] == 1

    def test_json_round_trip(self):
        spec = table2.campaign_spec(datasets=("cifar10",), methods=("ComDML", "FedAvg"))
        assert CampaignSpec.from_json(spec.to_json()) == spec
        # And through an actual JSON string (what a spec file contains).
        assert CampaignSpec.from_json(json.loads(json.dumps(spec.to_json()))) == spec

    def test_save_load_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "specs" / "tiny.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec

    def test_list_values_survive_round_trip(self):
        spec = CampaignSpec.create(
            name="lists", runner="r", axes={"a": (1,)}, base={"ids": [3, 4]}
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.expand()[0]["ids"] == [3, 4]

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            CampaignSpec(name="d", runner="r", axes=(("a", (1,)), ("a", (2,))))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            CampaignSpec.create(name="e", runner="r", axes={"a": ()})


class TestCellKey:
    def test_stable_across_processes(self):
        params = {"dataset": "cifar10", "seed": 0}
        assert cell_key("table2-cell", params) == cell_key("table2-cell", dict(params))

    def test_changes_with_params_and_runner(self):
        base = cell_key("r", {"seed": 0})
        assert cell_key("r", {"seed": 1}) != base
        assert cell_key("other", {"seed": 0}) != base


class TestRunnerRegistry:
    def test_resolves_registered_runner(self):
        runner = resolve_runner("ablation-allreduce")
        payload = runner(num_agents=4)
        assert payload["num_agents"] == 4

    def test_unknown_runner_rejected(self):
        with pytest.raises(KeyError, match="unknown cell runner"):
            resolve_runner("nope")

    def test_register_requires_dotted_path(self):
        with pytest.raises(ValueError, match="module:function"):
            register_cell_runner("bad", "no-colon")


class TestExecutorCaching:
    def test_cache_hit_on_identical_cell(self, tmp_path):
        spec = tiny_spec()
        first = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.status for cell in first.cells] == ["miss", "miss"]
        second = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.status for cell in second.cells] == ["hit", "hit"]
        assert second.payloads() == first.payloads()

    def test_cache_miss_on_config_change(self, tmp_path):
        execute_campaign(tiny_spec(), cache_dir=tmp_path)
        changed = execute_campaign(
            tiny_spec(bandwidth_mbps=20.0), cache_dir=tmp_path
        )
        assert changed.misses == 2

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        first = execute_campaign(spec, cache_dir=tmp_path)
        # Simulate an interrupted sweep: one finished cell is lost.
        cache = CampaignCache(tmp_path)
        cache.path_for(first.cells[0].key).unlink()
        resumed = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.status for cell in resumed.cells] == ["miss", "hit"]
        assert resumed.payloads() == first.payloads()

    def test_corrupt_entry_treated_as_miss_and_quarantined(self, tmp_path):
        spec = tiny_spec()
        first = execute_campaign(spec, cache_dir=tmp_path)
        cache = CampaignCache(tmp_path)
        corrupt_source = cache.path_for(first.cells[1].key)
        corrupt_source.write_text("{truncated", encoding="utf-8")
        rerun = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.status for cell in rerun.cells] == ["hit", "miss"]
        # The broken file was renamed aside (recomputed once, never
        # re-parsed), and the recomputed entry is a clean hit afterwards.
        quarantined = cache.quarantined()
        assert [path.name for path in quarantined] == [corrupt_source.name + ".corrupt"]
        assert not corrupt_source.exists() or corrupt_source.read_text() != "{truncated"
        third = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.status for cell in third.cells] == ["hit", "hit"]

    def test_clear_removes_quarantined_files(self, tmp_path):
        spec = tiny_spec()
        first = execute_campaign(spec, cache_dir=tmp_path)
        cache = CampaignCache(tmp_path)
        cache.path_for(first.cells[0].key).write_text("{truncated", encoding="utf-8")
        cache.load(first.cells[0].key)  # quarantines
        assert len(cache.quarantined()) == 1
        assert len(cache) == 1
        # 1 live entry + 1 quarantined file.
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.quarantined() == []

    def test_force_recomputes_everything(self, tmp_path):
        spec = tiny_spec()
        execute_campaign(spec, cache_dir=tmp_path)
        forced = execute_campaign(spec, cache_dir=tmp_path, force=True)
        assert forced.misses == 2

    def test_no_cache_dir_disables_caching(self):
        result = execute_campaign(tiny_spec())
        assert result.misses == 2
        assert result.cache_dir is None

    def test_clear_empties_cache(self, tmp_path):
        execute_campaign(tiny_spec(), cache_dir=tmp_path)
        cache = CampaignCache(tmp_path)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_leaves_foreign_files_alone(self, tmp_path):
        """clear() pointed at a directory with other JSON must not eat it."""
        execute_campaign(tiny_spec(), cache_dir=tmp_path)
        spec_file = tmp_path / "my_sweep.json"
        spec_file.write_text("{}", encoding="utf-8")
        nested = tmp_path / "results" / "table2.json"
        nested.parent.mkdir()
        nested.write_text("[]", encoding="utf-8")
        assert CampaignCache(tmp_path).clear() == 2
        assert spec_file.exists()
        assert nested.exists()

    def test_failed_cell_does_not_discard_finished_ones(self, tmp_path):
        """Parallel runs cache completed cells even when another cell fails."""
        spec = CampaignSpec.create(
            name="partial",
            runner="table1-setting",
            # "setting3" does not exist, so its cell raises; the two valid
            # settings must still land in the cache.
            axes={"setting": ("setting1", "setting2", "setting3")},
            base={"samples_per_agent": 500, "seed": 0},
        )
        with pytest.raises(KeyError, match="setting3"):
            execute_campaign(spec, jobs=2, cache_dir=tmp_path)
        assert len(CampaignCache(tmp_path)) == 2
        # Resume: the good cells are hits; only the bad one re-runs (and
        # fails again).
        with pytest.raises(KeyError, match="setting3"):
            execute_campaign(spec, jobs=2, cache_dir=tmp_path)

    def test_unknown_runner_rejected_up_front(self):
        spec = CampaignSpec.create(name="x", runner="missing", axes={"a": (1,)})
        with pytest.raises(KeyError, match="unknown cell runner"):
            CampaignExecutor(spec)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            CampaignExecutor(tiny_spec(), jobs=0)


class TestCacheDirResolution:
    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("COMDML_CACHE_DIR", "/env/cache")
        assert resolve_cache_dir("/flag/cache") == "/flag/cache"

    def test_env_wins_over_fallback(self, monkeypatch):
        monkeypatch.setenv("COMDML_CACHE_DIR", "/env/cache")
        assert resolve_cache_dir(None, "/fallback") == "/env/cache"

    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("COMDML_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None, "/fallback") == "/fallback"
        assert resolve_cache_dir(None) is None

    def test_empty_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("COMDML_CACHE_DIR", "")
        assert resolve_cache_dir(None, "/fallback") == "/fallback"


class TestParallelDeterminism:
    def test_jobs_do_not_change_payloads(self, tmp_path):
        spec = table2.campaign_spec(
            datasets=("cifar10",),
            distributions=(True,),
            methods=("ComDML", "AllReduce", "FedAvg"),
            max_rounds=40,
        )
        serial = execute_campaign(spec)
        parallel = execute_campaign(spec, jobs=4)
        assert serial.payloads() == parallel.payloads()

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_history_digests_identical_for_any_job_count(self, seed):
        """--jobs 1 and --jobs 4 yield bit-identical RunHistory digests."""
        spec = comparison.campaign_spec(
            methods=("ComDML", "AllReduce"),
            num_agents=4,
            max_rounds=4,
            target_accuracy=None,
            offload_granularity=9,
            seed=seed,
        )
        serial = execute_campaign(spec, jobs=1)
        parallel = execute_campaign(spec, jobs=4)
        assert [row["history_digest"] for row in serial.payloads()] == [
            row["history_digest"] for row in parallel.payloads()
        ]


class TestSummary:
    def test_execution_report_counts(self, tmp_path):
        spec = tiny_spec()
        execute_campaign(spec, cache_dir=tmp_path)
        result = execute_campaign(spec, cache_dir=tmp_path)
        report = execution_report(result)
        assert report["cells"] == 2
        assert report["cache_hits"] == 2
        assert report["cache_misses"] == 0
        assert report["backend"] == "serial"
        assert report["events"].get("cell_cached") == 2
        assert [row["status"] for row in report["per_cell"]] == ["hit", "hit"]
        text = format_campaign_summary(result, verbose=True)
        assert "2 cells" in text and "2 cached" in text

    def test_campaign_summary_is_cache_and_backend_agnostic(self, tmp_path):
        spec = tiny_spec()
        cold = campaign_summary(execute_campaign(spec, cache_dir=tmp_path))
        warm = campaign_summary(execute_campaign(spec, cache_dir=tmp_path))
        threaded = campaign_summary(execute_campaign(spec, backend="thread", jobs=2))
        assert cold == warm == threaded
        assert cold["digest"] and len(cold["digest"]) == 64

    def test_payload_order_matches_expansion(self, tmp_path):
        spec = tiny_spec()
        result = execute_campaign(spec, cache_dir=tmp_path)
        assert [cell.params["num_agents"] for cell in result.cells] == [4, 8]
        assert [p["num_agents"] for p in result.payloads()] == [4, 8]


class TestPlannerReporting:
    """Planner stats flow from cells into the execution report."""

    def test_comdml_cells_report_planner_stats(self):
        spec = comparison.campaign_spec(
            methods=("ComDML", "AllReduce"),
            num_agents=4,
            max_rounds=3,
            target_accuracy=None,
            offload_granularity=9,
            seed=3,
        )
        result = execute_campaign(spec)
        by_method = {row["method"]: row for row in result.payloads()}
        assert "planner" in by_method["ComDML"]
        planner = by_method["ComDML"]["planner"]
        assert planner["rounds"] >= 0
        assert {"csr_edits", "csr_rebuilds", "csr_compactions"} <= set(planner)
        # Baselines have no planner and must not grow the key.
        assert "planner" not in by_method["AllReduce"]
        report = execution_report(result)
        assert report["planner"]["cells_reporting"] == 1
        assert report["planner"]["rounds"] == planner["rounds"]

    def test_aggregate_sums_counters_and_maxes_spread(self):
        from repro.experiments.reporting import aggregate_planner_reports

        payloads = [
            {"planner": {"rounds": 2, "csr_edits": 3,
                         "shards": {"sharded_rounds": 1, "cost_spread_max": 1.5,
                                    "last_shard_costs": [5, 7]}}},
            {"planner": {"rounds": 4, "csr_edits": 0,
                         "shards": {"sharded_rounds": 2, "cost_spread_max": 1.2,
                                    "last_shard_costs": [6, 6]}}},
            {"method": "AllReduce"},
            "not-a-dict",
        ]
        aggregate = aggregate_planner_reports(payloads)
        assert aggregate["cells_reporting"] == 2
        assert aggregate["rounds"] == 6
        assert aggregate["csr_edits"] == 3
        assert aggregate["shards"]["sharded_rounds"] == 3
        assert aggregate["shards"]["cost_spread_max"] == 1.5
        assert "last_shard_costs" not in aggregate["shards"]
        assert aggregate_planner_reports([{"x": 1}, "y"]) is None
