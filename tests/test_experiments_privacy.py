"""Tests for the privacy-integration experiment (real proxy training)."""

import pytest

from repro.experiments.privacy import (
    format_privacy_results,
    run_privacy_comparison,
    run_privacy_configuration,
)


@pytest.fixture(scope="module")
def baseline_result():
    return run_privacy_configuration(
        "none", num_agents=4, rounds=5, train_samples=1_200, test_samples=400, seed=0
    )


class TestPrivacyExperiment:
    def test_baseline_learns(self, baseline_result):
        assert baseline_result.final_accuracy > 0.3
        assert baseline_result.rounds == 5

    def test_patch_shuffle_close_to_baseline(self, baseline_result):
        result = run_privacy_configuration(
            "patch_shuffle",
            num_agents=4,
            rounds=5,
            train_samples=1_200,
            test_samples=400,
            seed=0,
        )
        assert result.final_accuracy > 0.2
        assert result.final_accuracy >= baseline_result.final_accuracy - 0.3

    def test_differential_privacy_costs_some_accuracy(self, baseline_result):
        result = run_privacy_configuration(
            "differential_privacy",
            num_agents=4,
            rounds=5,
            train_samples=1_200,
            test_samples=400,
            seed=0,
        )
        # DP must not destroy learning entirely but typically costs accuracy.
        assert 0.05 < result.final_accuracy <= baseline_result.final_accuracy + 0.05

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            run_privacy_configuration("homomorphic", num_agents=4, rounds=2)

    def test_format_results(self, baseline_result):
        text = format_privacy_results([baseline_result])
        assert "none" in text


@pytest.mark.slow
class TestFullPrivacyComparison:
    def test_all_mechanisms_run(self):
        results = run_privacy_comparison(num_agents=4, rounds=4, seed=1)
        assert len(results) == 4
        assert all(0.0 <= result.final_accuracy <= 1.0 for result in results)
