"""Tests for the EventTrace rendering/export helpers in experiments.reporting."""

import json

from repro.experiments.reporting import (
    dynamics_annotation,
    export_trace_json,
    format_agent_timeline,
    format_dynamics_summary,
    per_agent_timelines,
)
from repro.runtime.trace import EventTrace


def sample_trace() -> EventTrace:
    trace = EventTrace()
    trace.record(0.0, 0, "round_start")
    trace.record(5.0, 0, "churn", (1, 2), detail={"source": "schedule"})
    trace.record(6.0, 0, "unit_repriced", (1,), detail={"old_completion": 10.0, "new_completion": 12.0})
    trace.record(8.0, 0, "arrival", (7,), detail={"num_samples": 500})
    trace.record(12.0, 0, "unit_complete", (1,), detail={"duration": 12.0})
    trace.record(12.0, 0, "round_end", detail={"accuracy": 0.1, "duration": 12.0})
    trace.record(13.0, 1, "departure", (2,))
    trace.record(13.0, 1, "straggler_dropped", (3,), detail={"projected_completion": 20.0})
    return trace


class TestPerAgentTimelines:
    def test_every_mentioned_agent_gets_a_chronological_timeline(self):
        timelines = per_agent_timelines(sample_trace())
        assert set(timelines) == {1, 2, 3, 7}
        assert [event["kind"] for event in timelines[1]] == [
            "churn",
            "unit_repriced",
            "unit_complete",
        ]
        for events in timelines.values():
            timestamps = [event["timestamp"] for event in events]
            assert timestamps == sorted(timestamps)

    def test_round_level_events_belong_to_no_agent(self):
        timelines = per_agent_timelines(sample_trace())
        for events in timelines.values():
            assert all(event["kind"] != "round_start" for event in events)


class TestExportTraceJson:
    def test_round_trips_through_json(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.json"
        export_trace_json(trace, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["events"]) == len(trace)
        assert payload["kind_counts"]["churn"] == 1
        assert payload["dropped_events"] == 0
        assert set(payload["per_agent"]) == {"1", "2", "3", "7"}
        assert payload["per_agent"]["7"][0]["kind"] == "arrival"


class TestPlainTextRendering:
    def test_annotation_counts_only_dynamics_kinds(self):
        assert dynamics_annotation(sample_trace()) == "1 arr · 1 dep · 1 churn"
        assert dynamics_annotation(EventTrace()) == "-"

    def test_dynamics_summary_rows_per_round(self):
        summary = format_dynamics_summary(sample_trace())
        assert "round" in summary and "repriced" in summary
        assert format_dynamics_summary(EventTrace()) == "(no dynamics events)"

    def test_agent_timeline_renders_and_caps(self):
        rendered = format_agent_timeline(sample_trace(), 1, max_rows=2)
        assert "agent 1 timeline" in rendered
        assert "... and 1 more" in rendered
        assert format_agent_timeline(sample_trace(), 99) == "(no events for agent 99)"
