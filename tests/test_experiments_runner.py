"""Tests for the generic experiment runner."""

import pytest

from repro.baselines.fedavg import FedAvg
from repro.core.comdml import ComDML
from repro.experiments.reporting import (
    format_table,
    reduction_percentage,
    speedup_over_baselines,
    time_to_target_or_total,
)
from repro.experiments.runner import METHOD_REGISTRY, ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig


@pytest.fixture(scope="module")
def quick_runner():
    config = ScenarioConfig(
        num_agents=6,
        dataset="cifar10",
        target_accuracy=0.5,
        max_rounds=60,
        offload_granularity=9,
        seed=3,
    )
    return ExperimentRunner(config)


class TestExperimentRunner:
    def test_registry_contains_paper_methods(self):
        for name in ("ComDML", "FedAvg", "Gossip Learning", "BrainTorrent", "AllReduce"):
            assert name in METHOD_REGISTRY

    def test_build_method_types(self, quick_runner):
        assert isinstance(quick_runner.build_method("ComDML"), ComDML)
        assert isinstance(quick_runner.build_method("FedAvg"), FedAvg)

    def test_unknown_method_rejected(self, quick_runner):
        with pytest.raises(KeyError):
            quick_runner.build_method("DoesNotExist")

    def test_run_method_reaches_target(self, quick_runner):
        history = quick_runner.run_method("ComDML")
        assert history.final_accuracy >= 0.5

    def test_compare_runs_all_methods(self, quick_runner):
        results = quick_runner.compare(["ComDML", "AllReduce"])
        assert set(results) == {"ComDML", "AllReduce"}
        assert all(len(history) > 0 for history in results.values())

    def test_comdml_faster_than_baselines(self, quick_runner):
        results = quick_runner.compare(["ComDML", "AllReduce", "FedAvg"])
        speedups = speedup_over_baselines(results, target=0.5)
        assert all(speedup > 1.0 for speedup in speedups.values())


class TestReportingHelpers:
    def test_format_table_alignment(self):
        rows = [{"method": "ComDML", "time": 123.4}, {"method": "FedAvg", "time": 456.7}]
        text = format_table(rows)
        assert "ComDML" in text and "FedAvg" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert "empty" in format_table([])

    def test_reduction_percentage(self):
        assert reduction_percentage(30.0, 100.0) == pytest.approx(70.0)
        assert reduction_percentage(10.0, 0.0) == 0.0

    def test_time_to_target_falls_back_to_total(self, quick_runner):
        history = quick_runner.run_method("ComDML")
        assert time_to_target_or_total(history, 0.9999) == history.total_time
        assert time_to_target_or_total(history, None) == history.total_time

    def test_speedup_requires_reference(self, quick_runner):
        results = {"FedAvg": quick_runner.run_method("FedAvg")}
        with pytest.raises(KeyError):
            speedup_over_baselines(results, target=0.5)
