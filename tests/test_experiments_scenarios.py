"""Tests for scenario construction."""

import pytest

from repro.experiments.scenarios import (
    DATASET_TRAIN_SIZES,
    Scenario,
    ScenarioConfig,
    build_scenario,
)


class TestScenarioConfig:
    def test_defaults_valid(self):
        config = ScenarioConfig()
        assert config.num_agents == 10
        assert config.dataset == "cifar10"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(dataset="imagenet")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(model="vgg16")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(topology="star")

    def test_with_creates_modified_copy(self):
        config = ScenarioConfig()
        modified = config.with_(num_agents=50)
        assert modified.num_agents == 50
        assert config.num_agents == 10


class TestBuildScenario:
    def test_population_size_and_samples(self):
        scenario = build_scenario(ScenarioConfig(num_agents=10, dataset="cifar10"))
        assert len(scenario.registry) == 10
        assert scenario.registry.total_samples == DATASET_TRAIN_SIZES["cifar10"]

    def test_cinic_population_is_larger(self):
        cifar = build_scenario(ScenarioConfig(num_agents=10, dataset="cifar10"))
        cinic = build_scenario(ScenarioConfig(num_agents=10, dataset="cinic10"))
        assert cinic.registry.total_samples > cifar.registry.total_samples

    def test_non_iid_population_has_unequal_shards(self):
        scenario = build_scenario(ScenarioConfig(num_agents=10, iid=False))
        sizes = [agent.num_samples for agent in scenario.registry]
        assert max(sizes) - min(sizes) > 0

    def test_topology_variants(self):
        full = build_scenario(ScenarioConfig(num_agents=8, topology="full"))
        ring = build_scenario(ScenarioConfig(num_agents=8, topology="ring"))
        random = build_scenario(
            ScenarioConfig(num_agents=8, topology="random", link_fraction=0.3)
        )
        assert full.topology.connectivity_fraction() == pytest.approx(1.0)
        assert ring.topology.num_edges == 8
        assert random.topology.connectivity_fraction() < 1.0

    def test_model_selects_depth(self):
        r56 = build_scenario(ScenarioConfig(model="resnet56"))
        r110 = build_scenario(ScenarioConfig(model="resnet110"))
        assert r110.spec.num_layers > r56.spec.num_layers

    def test_cifar100_changes_num_classes(self):
        scenario = build_scenario(ScenarioConfig(dataset="cifar100"))
        assert scenario.spec.num_classes == 100

    def test_deterministic_given_seed(self):
        a = build_scenario(ScenarioConfig(seed=5))
        b = build_scenario(ScenarioConfig(seed=5))
        assert [x.profile for x in a.registry] == [x.profile for x in b.registry]
        assert [x.num_samples for x in a.registry] == [x.num_samples for x in b.registry]

    def test_fresh_registry_is_independent_copy(self):
        scenario = build_scenario(ScenarioConfig(num_agents=6))
        copy = scenario.fresh_registry()
        assert [a.profile for a in copy] == [a.profile for a in scenario.registry]
        assert copy is not scenario.registry

    def test_curve_tracker_uses_method_key(self):
        scenario = build_scenario(ScenarioConfig())
        comdml = scenario.curve_tracker("comdml")
        gossip = scenario.curve_tracker("gossip")
        assert comdml.curve.method == "comdml"
        assert gossip.curve.method == "gossip"

    def test_lr_plateau_factor_depends_on_population(self):
        small = build_scenario(ScenarioConfig(num_agents=10))
        large = build_scenario(ScenarioConfig(num_agents=50))
        assert small.comdml_config.lr_plateau_factor == 0.2
        assert large.comdml_config.lr_plateau_factor == 0.5
