"""Tests for the table/figure reproduction harnesses (reduced-size runs)."""

import pytest

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import Fig3Bar, format_fig3, run_fig3_dataset
from repro.experiments.table1 import (
    TABLE1_OFFLOAD_OPTIONS,
    TABLE1_SETTINGS,
    format_table1,
    run_setting,
    run_table1,
)
from repro.experiments.table2 import TABLE2_TARGETS, format_table2, run_table2_cell
from repro.experiments.table3 import format_table3, run_table3_cell


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(samples_per_agent=5_000)

    def test_all_offload_options_reported(self, table1):
        for rows in table1.values():
            assert [row.layers_offloaded for row in rows] == list(TABLE1_OFFLOAD_OPTIONS)

    def test_offloading_beats_no_offloading(self, table1):
        for rows in table1.values():
            no_offload = rows[0].total_seconds
            best = min(row.total_seconds for row in rows)
            assert best < no_offload

    def test_setting1_optimum_is_interior(self, table1):
        rows = table1["setting1"]
        best = min(rows, key=lambda row: row.total_seconds)
        assert 0 < best.layers_offloaded < 55

    def test_setting2_optimum_is_interior(self, table1):
        rows = table1["setting2"]
        best = min(rows, key=lambda row: row.total_seconds)
        assert 0 < best.layers_offloaded < 55

    def test_optimal_offload_differs_between_settings(self, table1):
        best1 = min(table1["setting1"], key=lambda row: row.total_seconds)
        best2 = min(table1["setting2"], key=lambda row: row.total_seconds)
        # The more heterogeneous setting offloads more layers.
        assert best1.layers_offloaded >= best2.layers_offloaded

    def test_total_consistent_with_components(self, table1):
        for rows in table1.values():
            for row in rows:
                assert row.total_seconds > 0
                assert row.fast_train_seconds >= 0
                assert row.communication_seconds >= 0
                assert row.idle_seconds >= 0

    def test_format_table1_lists_all_rows(self, table1):
        text = format_table1(table1)
        assert len(text.splitlines()) == 1 + len(TABLE1_OFFLOAD_OPTIONS)

    def test_single_setting_runner(self):
        rows = run_setting(TABLE1_SETTINGS[0], samples_per_agent=1_000)
        assert len(rows) == len(TABLE1_OFFLOAD_OPTIONS)


class TestTable2:
    @pytest.fixture(scope="class")
    def cifar10_cell(self):
        return run_table2_cell(
            "cifar10", True, methods=("ComDML", "AllReduce", "FedAvg"), max_rounds=400
        )

    def test_targets_cover_all_settings(self):
        assert len(TABLE2_TARGETS) == 6

    def test_all_methods_reach_target(self, cifar10_cell):
        assert all(cell.time_to_target_seconds is not None for cell in cifar10_cell)

    def test_comdml_fastest(self, cifar10_cell):
        by_method = {cell.method: cell.time_to_target_seconds for cell in cifar10_cell}
        assert by_method["ComDML"] < by_method["AllReduce"]
        assert by_method["ComDML"] < by_method["FedAvg"]

    def test_substantial_reduction(self, cifar10_cell):
        by_method = {cell.method: cell.time_to_target_seconds for cell in cifar10_cell}
        reduction = 1.0 - by_method["ComDML"] / by_method["FedAvg"]
        assert reduction > 0.4  # the paper reports ~0.70

    def test_format_table2(self, cifar10_cell):
        text = format_table2(cifar10_cell)
        assert "ComDML" in text and "cifar10" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def cell(self):
        return run_table3_cell(
            "resnet56", 20, methods=("ComDML", "AllReduce"), max_rounds=700, seed=1
        )

    def test_methods_reach_target(self, cell):
        assert all(c.time_to_target_seconds is not None for c in cell)

    def test_comdml_scales_better(self, cell):
        by_method = {c.method: c.time_to_target_seconds for c in cell}
        assert by_method["ComDML"] < by_method["AllReduce"]

    def test_format_table3(self, cell):
        assert "resnet56" in format_table3(cell)


class TestFig1:
    def test_balancing_reduces_round_time(self):
        timeline = run_fig1()
        assert timeline.round_time_with_balancing < timeline.round_time_without_balancing
        assert timeline.offloaded_layers > 0
        assert 0.0 < timeline.round_time_reduction_fraction < 1.0

    def test_idle_time_reduced(self):
        timeline = run_fig1()
        assert timeline.idle_with_balancing < timeline.idle_without_balancing

    def test_homogeneous_agents_gain_nothing(self):
        timeline = run_fig1(slow_cpu=1.0, fast_cpu=1.0, bandwidth_mbps=10.0)
        assert timeline.round_time_reduction_fraction <= 0.05


class TestFig3:
    @pytest.fixture(scope="class")
    def bars(self):
        return run_fig3_dataset(
            "cifar10",
            methods=("ComDML", "AllReduce"),
            num_agents=20,
            max_rounds=1_000,
            seed=2,
        )

    def test_bars_have_times(self, bars):
        assert all(isinstance(bar, Fig3Bar) for bar in bars)
        assert all(bar.time_to_target_seconds is not None for bar in bars)

    def test_comdml_retains_lead_under_sparse_topology(self, bars):
        by_method = {bar.method: bar.time_to_target_seconds for bar in bars}
        assert by_method["ComDML"] < by_method["AllReduce"]

    def test_format_fig3(self, bars):
        assert "ComDML" in format_fig3(bars)
