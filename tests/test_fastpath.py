"""Tests for the vectorized round-planning kernel (`repro.core.fastpath`).

The contract under test is *exact* equality with the scalar oracle: the
kernel must return bit-identical ``PairingDecision`` lists (split index,
helper id, and every float of the backing estimate) for any population,
profile, and bandwidth structure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.fastpath import PairCostModel, bandwidth_matrix, sparse_bandwidth
from repro.core.pairing import greedy_pairing, greedy_pairing_reference
from repro.core.profiling import profile_architecture
from repro.core.workload import (
    _pair_partitions,
    best_offload,
    exact_min_makespan,
    individual_training_time,
)
from repro.models.resnet import resnet56_spec
from repro.models.spec import ArchitectureSpec, LayerCost
from repro.network.link import LinkModel, pairwise_bandwidth
from repro.network.topology import full_topology, random_topology, ring_topology

RESNET56 = resnet56_spec()
PROFILE = profile_architecture(RESNET56, granularity=9)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
AGENT_STRATEGY = st.tuples(
    st.sampled_from([4.0, 2.0, 1.0, 0.5, 0.2, 0.7]),          # cpu share
    st.sampled_from([0.0, 10.0, 20.0, 50.0, 100.0]),          # bandwidth (0 = offline)
    st.integers(min_value=0, max_value=3_000),                # samples
    st.sampled_from([50, 100, 128]),                          # batch size
)


def _build_agents(population) -> list[Agent]:
    return [
        Agent(
            agent_id=index,
            profile=ResourceProfile(cpu, bandwidth),
            num_samples=samples,
            batch_size=batch,
        )
        for index, (cpu, bandwidth, samples, batch) in enumerate(population)
    ]


def _link_model(agents, topology_kind: str, seed: int) -> LinkModel:
    ids = [agent.agent_id for agent in agents]
    if topology_kind == "ring":
        return LinkModel(ring_topology(ids))
    if topology_kind == "random":
        return LinkModel(
            random_topology(ids, 0.4, np.random.default_rng(seed))
        )
    return LinkModel(full_topology(ids))


LAYER_STRATEGY = st.tuples(
    st.integers(min_value=1, max_value=100_000),   # forward flops
    st.integers(min_value=1, max_value=5_000),     # parameters
    st.integers(min_value=1, max_value=4_096),     # output elements
)


@st.composite
def synthetic_profiles(draw):
    """A random small architecture profiled at a random granularity."""
    layers = draw(st.lists(LAYER_STRATEGY, min_size=2, max_size=8))
    spec = ArchitectureSpec(
        name="hypothesis",
        layers=tuple(
            LayerCost(f"l{i}", float(flops), params, outputs)
            for i, (flops, params, outputs) in enumerate(layers)
        ),
        input_elements=draw(st.integers(min_value=1, max_value=3_072)),
        num_classes=10,
        head_flops=float(draw(st.integers(min_value=0, max_value=10_000))),
        head_parameter_count=draw(st.integers(min_value=0, max_value=1_000)),
    )
    granularity = draw(st.integers(min_value=1, max_value=len(layers)))
    return profile_architecture(spec, granularity=granularity)


# ----------------------------------------------------------------------
# Tentpole property: vectorized greedy == scalar greedy, exactly
# ----------------------------------------------------------------------
class TestGreedyEquivalence:
    @given(
        population=st.lists(AGENT_STRATEGY, min_size=1, max_size=12),
        topology_kind=st.sampled_from(["full", "ring", "random"]),
        threshold=st.sampled_from([0.0, 0.2, 0.95]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_identical_decisions_on_resnet_profile(
        self, population, topology_kind, threshold, seed
    ):
        agents = _build_agents(population)
        link_model = _link_model(agents, topology_kind, seed)
        reference = greedy_pairing_reference(
            agents, link_model, PROFILE, improvement_threshold=threshold
        )
        vectorized = greedy_pairing(
            agents, link_model, PROFILE, improvement_threshold=threshold
        )
        assert vectorized == reference

    @given(
        population=st.lists(AGENT_STRATEGY, min_size=2, max_size=8),
        profile=synthetic_profiles(),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_decisions_on_random_profiles(self, population, profile):
        agents = _build_agents(population)
        link_model = _link_model(agents, "full", 0)
        assert greedy_pairing(agents, link_model, profile) == (
            greedy_pairing_reference(agents, link_model, profile)
        )

    @given(
        population=st.lists(AGENT_STRATEGY, min_size=2, max_size=8),
        batch_size=st.sampled_from([25, 100, 200]),
    )
    @settings(max_examples=30, deadline=None)
    def test_identical_decisions_with_batch_override(self, population, batch_size):
        agents = _build_agents(population)
        link_model = _link_model(agents, "full", 0)
        assert greedy_pairing(
            agents, link_model, PROFILE, batch_size=batch_size
        ) == greedy_pairing_reference(
            agents, link_model, PROFILE, batch_size=batch_size
        )

    def test_zero_bandwidth_population_is_solo_only(self):
        """All-offline populations never pair — in both implementations."""
        agents = [
            Agent(i, ResourceProfile(0.2 + i, 0.0), num_samples=500)
            for i in range(4)
        ]
        link_model = LinkModel(full_topology(range(4)))
        vectorized = greedy_pairing(agents, link_model, PROFILE)
        assert vectorized == greedy_pairing_reference(agents, link_model, PROFILE)
        assert all(decision.fast_id is None for decision in vectorized)

    def test_homogeneous_population_is_solo_only(self):
        agents = [
            Agent(i, ResourceProfile(1.0, 50.0), num_samples=500) for i in range(5)
        ]
        link_model = LinkModel(full_topology(range(5)))
        vectorized = greedy_pairing(agents, link_model, PROFILE)
        assert vectorized == greedy_pairing_reference(agents, link_model, PROFILE)
        assert all(not decision.is_offloading for decision in vectorized)

    def test_empty_and_single_participant(self):
        link_model = LinkModel(full_topology(range(1)))
        assert greedy_pairing([], link_model, PROFILE) == []
        solo = [Agent(0, ResourceProfile(1.0, 50.0), num_samples=500)]
        assert greedy_pairing(solo, link_model, PROFILE) == (
            greedy_pairing_reference(solo, link_model, PROFILE)
        )

    def test_estimates_are_python_floats(self):
        """Kernel-built decisions must stay JSON-serializable (no np.float64)."""
        agents = _build_agents([(0.2, 50.0, 2_000, 100), (4.0, 100.0, 1_000, 100)])
        link_model = _link_model(agents, "full", 0)
        (decision,) = [
            d for d in greedy_pairing(agents, link_model, PROFILE) if d.is_offloading
        ]
        for value in (
            decision.estimate.pair_time,
            decision.estimate.slow_time,
            decision.estimate.communication_time,
        ):
            assert type(value) is float


# ----------------------------------------------------------------------
# Kernel internals against the scalar oracle
# ----------------------------------------------------------------------
class TestPairCostModel:
    def test_individual_times_match_scalar(self, small_registry, small_link_model):
        model = PairCostModel(
            small_registry.agents, PROFILE, link_model=small_link_model
        )
        for agent, time in zip(small_registry.agents, model.individual_times):
            assert time == individual_training_time(agent, PROFILE, agent.batch_size)

    def test_bandwidth_matrix_matches_link_model(self, small_registry):
        for kind in ("full", "ring", "random"):
            link_model = _link_model(small_registry.agents, kind, 3)
            matrix = bandwidth_matrix(small_registry.agents, link_model)
            for i, a in enumerate(small_registry.agents):
                for j, b in enumerate(small_registry.agents):
                    expected = link_model.bandwidth(a, b) if i != j else 0.0
                    assert matrix[i, j] == expected

    def test_best_times_match_best_offload(self, small_registry, small_link_model):
        agents = small_registry.agents
        model = PairCostModel(agents, PROFILE, link_model=small_link_model)
        for i, slow in enumerate(agents):
            for j, fast in enumerate(agents):
                if i == j:
                    assert model.best_pair_times[i, j] == np.inf
                    continue
                bandwidth = small_link_model.bandwidth(slow, fast)
                if bandwidth <= 0:
                    assert model.best_pair_times[i, j] == np.inf
                    continue
                oracle = best_offload(
                    slow_agent=slow,
                    fast_agent=fast,
                    profile=PROFILE,
                    bandwidth_bytes_per_second=bandwidth,
                    fast_agent_busy_time=float(model.individual_times[j]),
                    latency_seconds=small_link_model.latency_seconds,
                )
                assert model.best_pair_times[i, j] == oracle.pair_time
                assert model.best_offloaded_layers(i, j) == oracle.offloaded_layers
                assert model.estimate(i, j) == oracle

    def test_requires_exactly_one_bandwidth_source(self, small_registry, small_link_model):
        with pytest.raises(ValueError):
            PairCostModel(small_registry.agents, PROFILE)
        with pytest.raises(ValueError):
            PairCostModel(
                small_registry.agents,
                PROFILE,
                link_model=small_link_model,
                bandwidths=np.zeros((6, 6)),
            )

    def test_rejects_misshapen_bandwidths(self, small_registry):
        with pytest.raises(ValueError):
            PairCostModel(
                small_registry.agents, PROFILE, bandwidths=np.zeros((2, 2))
            )

    def test_pairable_excludes_useless_splits(self):
        """Equal agents' best 'split' is m=0, so they are not pairable."""
        agents = [
            Agent(0, ResourceProfile(1.0, 10.0), num_samples=1_000),
            Agent(1, ResourceProfile(1.0, 10.0), num_samples=1_000),
        ]
        model = PairCostModel(
            agents, PROFILE, link_model=LinkModel(full_topology(range(2)))
        )
        assert not model.pairable.any()


# ----------------------------------------------------------------------
# Exact solver: branch-and-bound == exhaustive enumeration
# ----------------------------------------------------------------------
def _exact_reference(agents, profile, bandwidth_lookup, batch_size=None):
    """The pre-kernel exhaustive solver, kept verbatim as the oracle."""
    agent_by_id = {agent.agent_id: agent for agent in agents}
    ids = [agent.agent_id for agent in agents]
    best_makespan = float("inf")
    best_assignment = []
    for partition in _pair_partitions(ids):
        makespan = 0.0
        assignment = []
        for group in partition:
            if len(group) == 1:
                agent = agent_by_id[group[0]]
                time = individual_training_time(
                    agent, profile, batch_size or agent.batch_size
                )
                assignment.append((agent.agent_id, None, 0))
                makespan = max(makespan, time)
                continue
            first, second = agent_by_id[group[0]], agent_by_id[group[1]]
            time_first = individual_training_time(
                first, profile, batch_size or first.batch_size
            )
            time_second = individual_training_time(
                second, profile, batch_size or second.batch_size
            )
            slow, fast = (
                (first, second) if time_first >= time_second else (second, first)
            )
            bandwidth = bandwidth_lookup(slow, fast)
            if bandwidth <= 0:
                assignment.append((first.agent_id, None, 0))
                assignment.append((second.agent_id, None, 0))
                makespan = max(makespan, time_first, time_second)
                continue
            estimate = best_offload(
                slow_agent=slow,
                fast_agent=fast,
                profile=profile,
                bandwidth_bytes_per_second=bandwidth,
                batch_size=batch_size,
            )
            assignment.append(
                (slow.agent_id, fast.agent_id, estimate.offloaded_layers)
            )
            makespan = max(makespan, estimate.pair_time)
        if makespan < best_makespan:
            best_makespan = makespan
            best_assignment = assignment
    return best_makespan, best_assignment


class TestExactSolverEquivalence:
    @given(
        population=st.lists(AGENT_STRATEGY, min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_to_exhaustive_enumeration(self, population):
        agents = _build_agents(population)
        result = exact_min_makespan(agents, PROFILE, pairwise_bandwidth)
        assert result == _exact_reference(agents, PROFILE, pairwise_bandwidth)

    def test_identical_with_zero_bandwidth_members(self):
        agents = [
            Agent(0, ResourceProfile(0.2, 0.0), num_samples=500),
            Agent(1, ResourceProfile(4.0, 100.0), num_samples=500),
            Agent(2, ResourceProfile(1.0, 0.0), num_samples=500),
            Agent(3, ResourceProfile(2.0, 20.0), num_samples=500),
        ]
        result = exact_min_makespan(agents, PROFILE, pairwise_bandwidth)
        assert result == _exact_reference(agents, PROFILE, pairwise_bandwidth)

    def test_empty_population(self):
        assert exact_min_makespan([], PROFILE, pairwise_bandwidth) == (0.0, [])

    def test_batch_override_identical(self):
        agents = _build_agents(
            [(0.2, 50.0, 900, 100), (4.0, 100.0, 700, 50), (1.0, 20.0, 500, 128)]
        )
        result = exact_min_makespan(
            agents, PROFILE, pairwise_bandwidth, batch_size=64
        )
        assert result == _exact_reference(
            agents, PROFILE, pairwise_bandwidth, batch_size=64
        )


class _HalvedLinkModel(LinkModel):
    """Custom pairwise semantics: half the default effective bandwidth."""

    def bandwidth(self, a, b):  # noqa: D102 - contract inherited
        return super().bandwidth(a, b) / 2.0


class TestBandwidthRepresentations:
    def test_bandwidth_matrix_with_custom_subclass(self, small_registry):
        """Overridden semantics go through per-edge calls, exactly."""
        for kind in ("full", "ring", "random"):
            base = _link_model(small_registry.agents, kind, 5)
            custom = _HalvedLinkModel(base.topology)
            matrix = bandwidth_matrix(small_registry.agents, custom)
            for i, a in enumerate(small_registry.agents):
                for j, b in enumerate(small_registry.agents):
                    expected = custom.bandwidth(a, b) if i != j else 0.0
                    assert matrix[i, j] == expected

    def test_bandwidth_matrix_with_agent_missing_from_topology(
        self, small_registry
    ):
        """A participant the topology does not know resolves to 0 links."""
        agents = list(small_registry.agents)
        link_model = LinkModel(
            full_topology([agent.agent_id for agent in agents[:-1]])
        )
        matrix = bandwidth_matrix(agents, link_model)
        assert (matrix[-1, :] == 0.0).all()
        assert (matrix[:, -1] == 0.0).all()
        for i, a in enumerate(agents[:-1]):
            for j, b in enumerate(agents[:-1]):
                expected = link_model.bandwidth(a, b) if i != j else 0.0
                assert matrix[i, j] == expected

    def test_bandwidth_matrix_propagates_unexpected_errors(
        self, small_registry, small_link_model, monkeypatch
    ):
        """Only missing-node failures may demote to the fallback path."""
        import repro.core.fastpath as fastpath

        def broken_adjacency(link_model, ids):
            raise RuntimeError("adjacency bug")

        monkeypatch.setattr(fastpath, "_adjacency", broken_adjacency)
        with pytest.raises(RuntimeError, match="adjacency bug"):
            bandwidth_matrix(small_registry.agents, small_link_model)

    def test_sparse_bandwidth_matches_link_model(self, small_registry):
        for kind in ("full", "ring", "random"):
            link_model = _link_model(small_registry.agents, kind, 9)
            sparse = sparse_bandwidth(small_registry.agents, link_model)
            dense = bandwidth_matrix(small_registry.agents, link_model)
            assert sparse.num_rows == len(small_registry.agents)
            rebuilt = np.zeros_like(dense)
            for i in range(sparse.num_rows):
                cols, values = sparse.row(i)
                assert (values > 0.0).all()
                assert (np.diff(cols) > 0).all()  # ascending, no duplicates
                rebuilt[i, cols] = values
            assert (rebuilt == dense).all()

    def test_sparse_bandwidth_with_custom_subclass(self, small_registry):
        base = _link_model(small_registry.agents, "random", 9)
        custom = _HalvedLinkModel(base.topology)
        sparse = sparse_bandwidth(small_registry.agents, custom)
        dense = bandwidth_matrix(small_registry.agents, custom)
        rebuilt = np.zeros_like(dense)
        for i in range(sparse.num_rows):
            cols, values = sparse.row(i)
            rebuilt[i, cols] = values
        assert (rebuilt == dense).all()

    def test_sparse_bandwidth_empty_population(self):
        sparse = sparse_bandwidth([], LinkModel(full_topology([])))
        assert sparse.num_rows == 0
        assert sparse.num_links == 0


class TestBatchSizeValidation:
    def test_cost_model_rejects_non_positive_batch_size(
        self, small_registry, small_link_model
    ):
        for bad in (0, -5):
            with pytest.raises(ValueError, match="batch_size"):
                PairCostModel(
                    small_registry.agents,
                    PROFILE,
                    link_model=small_link_model,
                    batch_size=bad,
                )
