"""Tests for per-runner source fingerprints (campaign cache keys)."""

import importlib
import sys
import textwrap

import pytest

from repro.experiments import fingerprint
from repro.experiments.campaign import CELL_RUNNERS, cell_key
from repro.experiments.fingerprint import (
    clear_fingerprint_cache,
    module_source_closure,
    runner_fingerprint,
    source_fingerprint,
)


@pytest.fixture(autouse=True)
def fresh_fingerprints():
    clear_fingerprint_cache()
    yield
    clear_fingerprint_cache()


def _forget_fpdemo():
    # find_spec imports parent packages; drop any stale fpdemo from a
    # previous test's tmp_path so module resolution starts fresh.
    for name in [m for m in sys.modules if m == "fpdemo" or m.startswith("fpdemo.")]:
        del sys.modules[name]


@pytest.fixture
def demo_package(tmp_path, monkeypatch):
    """A throwaway package with a runner module we can edit on disk."""
    _forget_fpdemo()
    pkg = tmp_path / "fpdemo"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "runner.py").write_text(
        textwrap.dedent(
            """
            from repro.experiments.backends.invoke import report_cell_progress

            def cell(x=0):
                return {"x": x}
            """
        )
    )
    (pkg / "unrelated.py").write_text("UNUSED = 1\n")
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.invalidate_caches()
    yield pkg
    _forget_fpdemo()
    importlib.invalidate_caches()


class TestClosure:
    def test_contains_the_module_itself_and_its_repro_imports(self):
        closure = module_source_closure("repro.experiments.comparison")
        assert "repro.experiments.comparison" in closure
        # `from repro.experiments.runner import ExperimentRunner` pulls the
        # runner module (not the attribute) into the closure.
        assert "repro.experiments.runner" in closure
        assert "repro.experiments.scenarios" in closure
        assert all(len(digest) == 64 for digest in closure.values())

    def test_execution_engine_modules_stay_out_of_runner_closures(self):
        """Engine edits must not cold-start every cache: campaign.py,
        fingerprint.py and the backends package are orchestration, not cell
        behaviour (contract changes bump CACHE_SCHEMA_VERSION instead)."""
        closure = module_source_closure("repro.experiments.table2")
        assert "repro.experiments.campaign" not in closure
        assert "repro.experiments.fingerprint" not in closure
        assert not any(
            name.startswith("repro.experiments.backends") for name in closure
        )

    def test_version_module_is_always_excluded(self):
        # campaign.py imports repro.version, so without the exclusion a
        # version bump would invalidate every cache entry again.
        closure = module_source_closure("repro.experiments.campaign")
        assert "repro.version" not in closure

    def test_unrelated_repro_modules_stay_out(self):
        closure = module_source_closure("repro.experiments.ablations")
        assert "repro.cli" not in closure

    def test_non_repro_imports_are_not_followed(self):
        closure = module_source_closure("repro.experiments.campaign")
        assert all(name.startswith("repro") for name in closure)

    def test_ancestor_package_inits_are_hashed_into_the_closure(self):
        """Importing repro.experiments.table2 executes repro/__init__ and
        repro/experiments/__init__, so both must be fingerprinted."""
        closure = module_source_closure("repro.experiments.table2")
        assert "repro" in closure
        assert "repro.experiments" in closure
        assert len(closure["repro"]) == 64

    def test_ancestor_init_imports_are_not_recursed(self):
        """Hub __init__ re-exports must not drag every harness into every
        closure: repro.experiments/__init__ imports the privacy harness,
        but the ablations runner never does."""
        closure = module_source_closure("repro.experiments.ablations")
        assert "repro.experiments" in closure
        assert "repro.experiments.privacy" not in closure

    def test_excluded_engine_packages_stay_out_even_as_ancestors(self):
        closure = module_source_closure("repro.experiments.table2")
        assert not any(
            name.startswith("repro.experiments.backends") for name in closure
        )


class TestFingerprint:
    def test_stable_across_calls(self):
        dotted = CELL_RUNNERS["ablation-allreduce"]
        assert runner_fingerprint(dotted) == runner_fingerprint(dotted)

    def test_differs_between_runner_modules(self):
        assert runner_fingerprint(CELL_RUNNERS["table2-cell"]) != runner_fingerprint(
            CELL_RUNNERS["fig1-timeline"]
        )

    def test_version_bump_changes_nothing(self, monkeypatch):
        """Bumping the package version must leave cache keys untouched."""
        params = {"num_agents": 4}
        before = cell_key("ablation-allreduce", params)
        import repro.version

        monkeypatch.setattr(repro.version, "__version__", "999.0.0")
        clear_fingerprint_cache()
        assert cell_key("ablation-allreduce", params) == before

    def test_editing_the_runner_module_changes_the_fingerprint(self, demo_package):
        first = source_fingerprint("fpdemo.runner")
        (demo_package / "runner.py").write_text(
            (demo_package / "runner.py").read_text() + "\n# edited\n"
        )
        clear_fingerprint_cache()
        importlib.invalidate_caches()
        assert source_fingerprint("fpdemo.runner") != first

    def test_editing_a_package_init_changes_the_fingerprint(
        self, demo_package, monkeypatch
    ):
        """A behaviour-changing package __init__ edit must invalidate the
        caches of runners inside that package (ROADMAP blind spot)."""
        monkeypatch.setattr(fingerprint, "ROOT_PACKAGE", "fpdemo")
        first = source_fingerprint("fpdemo.runner")
        assert "fpdemo" in module_source_closure("fpdemo.runner")
        (demo_package / "__init__.py").write_text("SIDE_EFFECT = True\n")
        clear_fingerprint_cache()
        importlib.invalidate_caches()
        assert source_fingerprint("fpdemo.runner") != first

    def test_editing_an_unrelated_module_keeps_the_fingerprint(self, demo_package):
        first = source_fingerprint("fpdemo.runner")
        (demo_package / "unrelated.py").write_text("UNUSED = 2  # edited\n")
        clear_fingerprint_cache()
        importlib.invalidate_caches()
        assert source_fingerprint("fpdemo.runner") == first

    def test_cell_key_tracks_runner_source(self, demo_package, monkeypatch):
        monkeypatch.setitem(CELL_RUNNERS, "fp-test", "fpdemo.runner:cell")
        before = cell_key("fp-test", {"x": 1})
        assert before != cell_key("fp-test", {"x": 2})
        (demo_package / "runner.py").write_text(
            (demo_package / "runner.py").read_text() + "\n# new behaviour\n"
        )
        clear_fingerprint_cache()
        importlib.invalidate_caches()
        assert cell_key("fp-test", {"x": 1}) != before

    def test_unregistered_runner_still_gets_a_key(self):
        assert len(cell_key("not-registered", {"a": 1})) == 64

    def test_missing_module_uses_version_sentinel(self):
        closure = module_source_closure("repro.no_such_module_anywhere")
        assert closure["repro.no_such_module_anywhere"].startswith("unavailable:")

    def test_fingerprint_memoised_per_dotted_path(self, monkeypatch):
        calls = []
        original = fingerprint.source_fingerprint

        def counting(module_name):
            calls.append(module_name)
            return original(module_name)

        monkeypatch.setattr(fingerprint, "source_fingerprint", counting)
        dotted = CELL_RUNNERS["demo-cell"]
        runner_fingerprint(dotted)
        runner_fingerprint(dotted)
        assert len(calls) == 1
