"""End-to-end integration tests exercising the full pipeline.

These are the closest thing to a miniature paper reproduction inside the
test suite: a heterogeneous population, the ComDML pipeline with *real*
proxy-model training (no learning-curve shortcut), and the comparison with a
no-balancing baseline.
"""

import numpy as np
import pytest

from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.baselines.allreduce_dml import AllReduceDML
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.data.partition import iid_partition
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec
from repro.training.accuracy import ProxyAccuracyTracker


@pytest.fixture(scope="module")
def proxy_world():
    """Six heterogeneous agents with real data shards and a proxy model."""
    train, test = cifar10_like(train_samples=1_800, test_samples=600, num_features=32, seed=9)
    num_agents = 6
    shards = iid_partition(train.labels, num_agents, np.random.default_rng(0))
    profiles = [
        ResourceProfile(4.0, 100.0),
        ResourceProfile(2.0, 50.0),
        ResourceProfile(1.0, 50.0),
        ResourceProfile(1.0, 20.0),
        ResourceProfile(0.5, 20.0),
        ResourceProfile(0.2, 10.0),
    ]
    registry = AgentRegistry.build(
        num_agents=num_agents,
        rng=np.random.default_rng(1),
        samples_per_agent=[len(shard) for shard in shards],
        batch_size=50,
        profiles=profiles,
    )
    datasets = {i: train.subset(shards[i], f"agent{i}") for i in range(num_agents)}
    spec = resnet56_spec()
    factory = ProxyModelFactory(spec=spec, input_features=32, num_blocks=3, width=24)
    return registry, datasets, test, spec, factory


class TestEndToEndComDML:
    def test_comdml_with_real_training_reaches_good_accuracy(self, proxy_world):
        registry, datasets, test, spec, factory = proxy_world
        tracker = ProxyAccuracyTracker(
            factory=factory,
            agent_datasets=datasets,
            test_dataset=test,
            batch_size=50,
            seed=0,
        )
        config = ComDMLConfig(
            max_rounds=8, learning_rate=0.05, batch_size=50, offload_granularity=9, seed=0
        )
        comdml = ComDML(registry=registry, spec=spec, config=config, accuracy_tracker=tracker)
        history = comdml.run()
        assert history.final_accuracy > 0.5
        assert history.total_time > 0
        assert any(record.num_pairs > 0 for record in history.records)

    def test_comdml_beats_allreduce_on_time_at_same_accuracy(self, proxy_world):
        registry, datasets, test, spec, factory = proxy_world

        def build_tracker(seed):
            return ProxyAccuracyTracker(
                factory=factory,
                agent_datasets=datasets,
                test_dataset=test,
                batch_size=50,
                seed=seed,
            )

        config = ComDMLConfig(
            max_rounds=6, learning_rate=0.05, batch_size=50, offload_granularity=9, seed=0
        )
        comdml_history = ComDML(
            registry=registry, spec=spec, config=config, accuracy_tracker=build_tracker(1)
        ).run()
        baseline_history = AllReduceDML(
            registry=registry, spec=spec, config=config, accuracy_tracker=build_tracker(1)
        ).run()

        # Both learn comparably (same tracker construction)...
        assert abs(comdml_history.final_accuracy - baseline_history.final_accuracy) < 0.15
        # ...but ComDML's simulated wall-clock is substantially shorter.
        assert comdml_history.total_time < 0.8 * baseline_history.total_time

    def test_simulated_time_independent_of_wall_clock(self, proxy_world):
        registry, _, _, spec, _ = proxy_world
        config = ComDMLConfig(max_rounds=3, offload_granularity=9, seed=0)
        first = ComDML(registry=registry, spec=spec, config=config).run()
        second = ComDML(registry=registry, spec=spec, config=config).run()
        assert first.total_time == pytest.approx(second.total_time)
