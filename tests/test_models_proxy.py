"""Tests for the proxy model factory."""

import numpy as np
import pytest

from repro.models.proxy import ProxyModelFactory, build_proxy_classifier
from repro.models.resnet import resnet56_spec


class TestBuildProxyClassifier:
    def test_output_shape(self, rng):
        model = build_proxy_classifier(12, 5, num_blocks=3, width=16, rng=rng)
        assert model.forward(np.zeros((4, 12))).shape == (4, 5)

    def test_depth_structure(self, rng):
        model = build_proxy_classifier(12, 5, num_blocks=3, width=16, rng=rng)
        # stem Dense + ReLU + 3 blocks + head Dense.
        assert len(model) == 6

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            build_proxy_classifier(0, 5, rng=rng)


class TestProxyModelFactory:
    @pytest.fixture
    def factory(self):
        return ProxyModelFactory(
            spec=resnet56_spec(), input_features=16, num_blocks=4, width=24
        )

    def test_build_uses_spec_classes(self, factory, rng):
        model = factory.build(rng)
        assert model.forward(np.zeros((2, 16))).shape == (2, 10)

    def test_offload_mapping_monotone(self, factory):
        offloads = [factory.proxy_offload_for(m) for m in (0, 9, 18, 27, 36, 45, 54)]
        assert offloads[0] == 0
        assert all(a <= b for a, b in zip(offloads, offloads[1:]))
        assert offloads[-1] <= factory.max_proxy_offload

    def test_offload_mapping_zero_is_zero(self, factory):
        assert factory.proxy_offload_for(0) == 0

    def test_offload_mapping_nonzero_is_at_least_one(self, factory):
        assert factory.proxy_offload_for(1) >= 1

    def test_build_split_shares_backbone(self, factory, rng):
        backbone = factory.build(rng)
        split = factory.build_split(27, rng=rng, backbone=backbone)
        assert split.is_split
        x = rng.normal(size=(3, 16))
        assert np.allclose(split.forward_full(x), backbone.forward(x))

    def test_invalid_spec_offload_rejected(self, factory):
        with pytest.raises(ValueError):
            factory.proxy_offload_for(56)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            ProxyModelFactory(spec=resnet56_spec(), input_features=0)
