"""Tests for the ResNet cost descriptors."""

import pytest

from repro.models.resnet import cifar_resnet_spec, resnet56_spec, resnet110_spec


class TestResNetStructure:
    def test_resnet56_has_55_offloadable_layers(self):
        # Stem + 3 stages × 9 blocks × 2 convs = 55, matching Table I's range.
        assert resnet56_spec().num_layers == 55

    def test_resnet110_has_109_offloadable_layers(self):
        assert resnet110_spec().num_layers == 109

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            cifar_resnet_spec(57)

    def test_parameter_count_close_to_published(self):
        # ResNet-56 for CIFAR-10 has ~0.85 M parameters.
        params = resnet56_spec().total_parameter_count
        assert 0.7e6 < params < 1.0e6

    def test_resnet110_parameter_count(self):
        # ResNet-110 has ~1.7 M parameters.
        params = resnet110_spec().total_parameter_count
        assert 1.5e6 < params < 2.0e6

    def test_resnet110_costs_more_than_resnet56(self):
        assert resnet110_spec().total_forward_flops > resnet56_spec().total_forward_flops

    def test_num_classes_only_changes_head(self):
        ten = resnet56_spec(num_classes=10)
        hundred = resnet56_spec(num_classes=100)
        assert hundred.total_parameter_count > ten.total_parameter_count
        assert hundred.layers == ten.layers

    def test_input_elements_are_cifar_shaped(self):
        assert resnet56_spec().input_elements == 3 * 32 * 32


class TestResNetActivations:
    def test_stage_activation_sizes(self):
        spec = resnet56_spec()
        # Stage 1 convs output 16×32×32, stage 2 32×16×16, stage 3 64×8×8.
        stage1 = spec.layers[1]
        stage2 = spec.layers[1 + 18]
        stage3 = spec.layers[1 + 36]
        assert stage1.output_elements == 16 * 32 * 32
        assert stage2.output_elements == 32 * 16 * 16
        assert stage3.output_elements == 64 * 8 * 8

    def test_intermediate_size_depends_on_split_stage(self):
        spec = resnet56_spec()
        # Offloading few layers splits late (small activations); offloading
        # many splits early (large activations) — the non-trivial trade-off
        # Table I highlights.
        assert spec.intermediate_bytes(5) < spec.intermediate_bytes(45)

    def test_model_bytes_about_3_4_mb(self):
        assert 2.5e6 < resnet56_spec().model_bytes < 4.5e6
