"""Tests for the architecture cost descriptors."""

import pytest

from repro.models.spec import ArchitectureSpec, LayerCost


class TestLayerCost:
    def test_bytes_and_train_cost(self):
        layer = LayerCost("conv", forward_flops=1_000.0, parameter_count=50, output_elements=20)
        assert layer.parameter_bytes == 200
        assert layer.output_bytes == 80
        assert layer.train_flops == 3_000.0
        assert layer.forward_cost > layer.forward_flops  # memory traffic added

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            LayerCost("bad", forward_flops=-1.0, parameter_count=0, output_elements=0)


class TestArchitectureSpecTotals:
    def test_totals_include_head(self, tiny_spec):
        layer_params = sum(layer.parameter_count for layer in tiny_spec.layers)
        assert tiny_spec.total_parameter_count == layer_params + tiny_spec.head_parameter_count
        assert tiny_spec.model_bytes == tiny_spec.total_parameter_count * 4

    def test_train_flops_are_triple_forward(self, tiny_spec):
        assert tiny_spec.total_train_flops == pytest.approx(3 * tiny_spec.total_forward_flops)

    def test_needs_at_least_one_layer(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(name="empty", layers=(), input_elements=10, num_classes=2)


class TestSplitQueries:
    def test_offload_zero_keeps_everything(self, tiny_spec):
        assert tiny_spec.fast_side_forward_flops(0) == 0.0
        assert tiny_spec.intermediate_elements(0) == 0
        assert tiny_spec.fast_side_parameter_count(0) == 0
        assert tiny_spec.auxiliary_head_parameter_count(0) == 0

    def test_slow_plus_fast_cover_whole_model(self, tiny_spec):
        for offload in range(tiny_spec.num_layers + 1):
            slow = tiny_spec.slow_side_forward_flops(offload)
            fast = tiny_spec.fast_side_forward_flops(offload)
            assert slow + fast == pytest.approx(tiny_spec.total_forward_flops)

    def test_parameters_partition(self, tiny_spec):
        for offload in range(tiny_spec.num_layers + 1):
            total = tiny_spec.slow_side_parameter_count(offload) + tiny_spec.fast_side_parameter_count(offload)
            assert total == tiny_spec.total_parameter_count

    def test_slow_side_decreases_with_offload(self, tiny_spec):
        costs = [tiny_spec.slow_side_forward_flops(m) for m in range(tiny_spec.num_layers + 1)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_intermediate_elements_match_boundary_layer(self, tiny_spec):
        # The activation crossing the split is the output of the last layer
        # the slow agent retains: offloading 1 layer keeps l1-l3 (l3 → 32),
        # offloading 3 keeps only l1 (64), offloading all ships the input.
        assert tiny_spec.intermediate_elements(1) == 32
        assert tiny_spec.intermediate_elements(3) == 64
        assert tiny_spec.intermediate_elements(tiny_spec.num_layers) == tiny_spec.input_elements

    def test_intermediate_bytes(self, tiny_spec):
        assert tiny_spec.intermediate_bytes(2) == 32 * 4

    def test_invalid_offload_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            tiny_spec.validate_offload(-1)
        with pytest.raises(ValueError):
            tiny_spec.validate_offload(tiny_spec.num_layers + 1)

    def test_auxiliary_head_small_relative_to_model(self, tiny_spec):
        for offload in range(1, tiny_spec.num_layers + 1):
            assert tiny_spec.auxiliary_head_parameter_count(offload) > 0
            assert (
                tiny_spec.auxiliary_head_forward_flops(offload)
                < tiny_spec.total_forward_flops
            )

    def test_offload_options_include_zero_and_respect_granularity(self, tiny_spec):
        options = tiny_spec.offload_options(granularity=2)
        assert options[0] == 0
        assert tiny_spec.num_layers - 1 in options
        assert all(m < tiny_spec.num_layers for m in options)
