"""Tests for split models and the auxiliary head."""

import numpy as np
import pytest

from repro.models.proxy import build_proxy_classifier
from repro.models.split import AuxiliaryHead, split_sequential
from repro.nn.serialization import get_flat_parameters


class TestAuxiliaryHead:
    def test_output_shape(self, rng):
        head = AuxiliaryHead(in_features=32, num_classes=10, rng=rng)
        assert head.forward(np.zeros((5, 32))).shape == (5, 10)

    def test_backward_shape(self, rng):
        head = AuxiliaryHead(in_features=32, num_classes=10, rng=rng)
        head.forward(np.zeros((5, 32)))
        assert head.backward(np.ones((5, 10))).shape == (5, 32)

    def test_pooling_reduces_classifier_width(self, rng):
        head = AuxiliaryHead(in_features=64, num_classes=10, pool_factor=4, rng=rng)
        assert head.classifier.in_features == 16

    def test_rejects_wrong_width(self, rng):
        head = AuxiliaryHead(in_features=16, num_classes=4, rng=rng)
        with pytest.raises(ValueError):
            head.forward(np.zeros((2, 8)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            AuxiliaryHead(16, 4, rng=rng).backward(np.zeros((2, 4)))


class TestSplitSequential:
    def test_no_offload_has_no_aux(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 0, num_classes=4, rng=rng)
        assert not split.is_split
        assert split.auxiliary is None
        assert len(split.fast_side) == 0

    def test_split_shares_parameters_with_backbone(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 2, num_classes=4, rng=rng)
        backbone_params = {id(p) for p in backbone.parameters()}
        split_params = {id(p) for p in split.slow_side.parameters()} | {
            id(p) for p in split.fast_side.parameters()
        }
        assert split_params == backbone_params

    def test_full_forward_matches_backbone(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 2, num_classes=4, rng=rng)
        x = rng.normal(size=(3, 8))
        assert np.allclose(split.forward_full(x), backbone.forward(x))

    def test_forward_slow_then_fast_matches_full(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=3, width=16, rng=rng)
        split = split_sequential(backbone, 2, num_classes=4, rng=rng)
        x = rng.normal(size=(3, 8))
        boundary = split.forward_slow(x)
        assert np.allclose(split.forward_fast(boundary), backbone.forward(x))

    def test_auxiliary_logits_shape(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 1, num_classes=4, rng=rng)
        boundary = split.forward_slow(rng.normal(size=(5, 8)))
        assert split.forward_auxiliary(boundary).shape == (5, 4)

    def test_forward_auxiliary_without_split_raises(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 0, num_classes=4, rng=rng)
        with pytest.raises(RuntimeError):
            split.forward_auxiliary(np.zeros((2, 16)))

    def test_parameter_partition(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 2, num_classes=4, rng=rng)
        slow = split.slow_parameters()
        fast = split.fast_parameters()
        # Slow params include the auxiliary head, which is not in the backbone.
        aux_count = sum(p.size for p in split.auxiliary.parameters())
        backbone_count = get_flat_parameters(backbone).size
        assert sum(p.size for p in slow) + sum(p.size for p in fast) == backbone_count + aux_count

    def test_invalid_offload_rejected(self, rng):
        backbone = build_proxy_classifier(8, 4, num_blocks=2, width=16, rng=rng)
        with pytest.raises(ValueError):
            split_sequential(backbone, len(backbone) + 1, num_classes=4, rng=rng)
