"""Tests for AllReduce timing and averaging."""

import numpy as np
import pytest

from repro.network.allreduce import (
    allreduce_average,
    allreduce_time,
    halving_doubling_allreduce,
    ring_allreduce,
)
from repro.network.compression import QuantizationCompressor


class TestRingAllReduce:
    def test_step_count(self):
        assert ring_allreduce(1e6, 8, 1e6).steps == 14

    def test_single_agent_is_free(self):
        result = ring_allreduce(1e6, 1, 1e6)
        assert result.time_seconds == 0.0
        assert result.per_agent_bytes == 0.0

    def test_per_agent_volume(self):
        result = ring_allreduce(1e6, 4, 1e6)
        assert result.per_agent_bytes == pytest.approx(2 * 3 / 4 * 1e6)

    def test_time_scales_with_model_size(self):
        small = ring_allreduce(1e6, 8, 1e6).time_seconds
        large = ring_allreduce(4e6, 8, 1e6).time_seconds
        assert large > small

    def test_rejects_zero_bandwidth_for_multiple_agents(self):
        with pytest.raises(ValueError):
            ring_allreduce(1e6, 4, 0.0)


class TestHalvingDoublingAllReduce:
    def test_step_count_logarithmic(self):
        assert halving_doubling_allreduce(1e6, 8, 1e6).steps == 6
        assert halving_doubling_allreduce(1e6, 64, 1e6).steps == 12

    def test_same_volume_as_ring(self):
        ring = ring_allreduce(2e6, 16, 1e6)
        hd = halving_doubling_allreduce(2e6, 16, 1e6)
        assert ring.per_agent_bytes == pytest.approx(hd.per_agent_bytes)

    def test_fewer_latency_terms_than_ring_for_many_agents(self):
        # With high latency and many agents, halving/doubling wins —
        # the reason the paper selects it.
        ring = ring_allreduce(1e6, 128, 1e7, latency_seconds=0.05)
        hd = halving_doubling_allreduce(1e6, 128, 1e7, latency_seconds=0.05)
        assert hd.time_seconds < ring.time_seconds

    def test_compression_reduces_time(self):
        plain = halving_doubling_allreduce(8e6, 16, 1e6)
        compressed = halving_doubling_allreduce(
            8e6, 16, 1e6, compressor=QuantizationCompressor(bits=8)
        )
        assert compressed.time_seconds < plain.time_seconds


class TestAllReduceTimeWrapper:
    def test_selects_algorithm(self):
        ring = allreduce_time(1e6, 8, 1e6, algorithm="ring")
        hd = allreduce_time(1e6, 8, 1e6, algorithm="halving_doubling")
        assert ring > 0 and hd > 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            allreduce_time(1e6, 8, 1e6, algorithm="butterfly")


class TestAllReduceAverage:
    def test_unweighted_mean(self):
        vectors = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        assert np.allclose(allreduce_average(vectors), [2.0, 3.0])

    def test_weighted_mean(self):
        vectors = [np.array([0.0]), np.array([10.0])]
        assert allreduce_average(vectors, weights=[1, 3])[0] == pytest.approx(7.5)

    def test_single_vector_identity(self):
        vector = np.array([5.0, -1.0])
        assert np.allclose(allreduce_average([vector]), vector)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            allreduce_average([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_average([np.zeros(2), np.zeros(3)])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_average([np.zeros(2), np.zeros(2)], weights=[1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            allreduce_average([np.zeros(2), np.zeros(2)], weights=[1.0, -1.0])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            allreduce_average([np.zeros(2), np.zeros(2)], weights=[0.0, 0.0])
