"""Tests for aggregation compressors."""

import numpy as np
import pytest

from repro.network.compression import (
    NoCompression,
    QuantizationCompressor,
    TopKSparsifier,
)


class TestNoCompression:
    def test_bytes_unchanged(self):
        assert NoCompression().compressed_bytes(1234.0) == 1234.0

    def test_values_unchanged(self):
        values = np.array([1.0, -2.0, 3.0])
        assert np.array_equal(NoCompression().compress(values), values)


class TestQuantization:
    def test_bytes_scale_with_bits(self):
        assert QuantizationCompressor(bits=8).compressed_bytes(400.0) == pytest.approx(100.0)
        assert QuantizationCompressor(bits=16).compressed_bytes(400.0) == pytest.approx(200.0)

    def test_error_bounded_by_step(self):
        values = np.linspace(-1.0, 1.0, 101)
        compressor = QuantizationCompressor(bits=8)
        reconstructed = compressor.compress(values)
        step = 2.0 / 255
        assert np.max(np.abs(reconstructed - values)) <= step / 2 + 1e-12

    def test_constant_vector_preserved(self):
        values = np.full(10, 3.14)
        assert np.allclose(QuantizationCompressor(bits=4).compress(values), values)

    def test_empty_vector(self):
        assert QuantizationCompressor().compress(np.array([])).size == 0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=0)
        with pytest.raises(ValueError):
            QuantizationCompressor(bits=64)


class TestTopKSparsifier:
    def test_keeps_largest_magnitudes(self):
        values = np.array([0.1, -5.0, 0.2, 4.0, 0.05])
        sparse = TopKSparsifier(fraction=0.4).compress(values)
        assert sparse[1] == -5.0 and sparse[3] == 4.0
        assert sparse[0] == 0.0 and sparse[4] == 0.0

    def test_bytes_scale_with_fraction(self):
        assert TopKSparsifier(fraction=0.25).compressed_bytes(1000.0) == pytest.approx(250.0)

    def test_full_fraction_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(TopKSparsifier(fraction=1.0).compress(values), values)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            TopKSparsifier(fraction=0.0)
        with pytest.raises(ValueError):
            TopKSparsifier(fraction=1.5)

    def test_preserves_shape(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        assert TopKSparsifier(fraction=0.5).compress(values).shape == (3, 4)
