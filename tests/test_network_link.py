"""Tests for the pairwise link model."""

import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.network.link import LinkModel, pairwise_bandwidth
from repro.network.topology import full_topology, ring_topology


def make_agent(agent_id, bandwidth):
    return Agent(
        agent_id=agent_id,
        profile=ResourceProfile(cpu_share=1.0, bandwidth_mbps=bandwidth),
        num_samples=100,
    )


class TestPairwiseBandwidth:
    def test_limited_by_slower_endpoint(self):
        a, b = make_agent(0, 100.0), make_agent(1, 10.0)
        assert pairwise_bandwidth(a, b) == b.profile.bandwidth_bytes_per_second


class TestLinkModel:
    def test_can_communicate_with_edge(self):
        agents = [make_agent(i, 50.0) for i in range(3)]
        model = LinkModel(full_topology([0, 1, 2]))
        assert model.can_communicate(agents[0], agents[1])

    def test_cannot_communicate_without_edge(self):
        agents = [make_agent(i, 50.0) for i in range(4)]
        model = LinkModel(ring_topology([0, 1, 2, 3]))
        assert not model.can_communicate(agents[0], agents[2])

    def test_cannot_communicate_with_self(self):
        agent = make_agent(0, 50.0)
        model = LinkModel(full_topology([0, 1]))
        assert not model.can_communicate(agent, agent)

    def test_disconnected_agent_cannot_communicate(self):
        a, b = make_agent(0, 0.0), make_agent(1, 50.0)
        model = LinkModel(full_topology([0, 1]))
        assert not model.can_communicate(a, b)
        assert model.bandwidth(a, b) == 0.0

    def test_transfer_time_positive(self):
        a, b = make_agent(0, 50.0), make_agent(1, 50.0)
        model = LinkModel(full_topology([0, 1]))
        assert model.transfer_time(a, b, 1_000_000) > 0

    def test_transfer_without_link_raises(self):
        a, b = make_agent(0, 0.0), make_agent(1, 50.0)
        model = LinkModel(full_topology([0, 1]))
        with pytest.raises(ValueError):
            model.transfer_time(a, b, 100)

    def test_transfer_time_monotone_in_bytes(self):
        a, b = make_agent(0, 50.0), make_agent(1, 50.0)
        model = LinkModel(full_topology([0, 1]))
        assert model.transfer_time(a, b, 2_000_000) > model.transfer_time(a, b, 1_000_000)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(full_topology([0, 1]), latency_seconds=-0.1)

    def test_neighbors_of_filters_disconnected(self):
        agents = [make_agent(0, 50.0), make_agent(1, 0.0), make_agent(2, 20.0)]
        registry = AgentRegistry(agents)
        model = LinkModel(full_topology([0, 1, 2]))
        neighbor_ids = [n.agent_id for n in model.neighbors_of(agents[0], registry)]
        assert neighbor_ids == [2]
