"""Tests for network topologies."""

import numpy as np
import pytest

from repro.network.topology import (
    full_topology,
    random_k_topology,
    random_topology,
    ring_topology,
)


class TestFullTopology:
    def test_edge_count(self):
        topology = full_topology(range(6))
        assert topology.num_edges == 15
        assert topology.connectivity_fraction() == pytest.approx(1.0)

    def test_everyone_connected_to_everyone(self):
        topology = full_topology(range(4))
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert topology.are_connected(a, b)

    def test_neighbors_sorted(self):
        topology = full_topology([3, 1, 2])
        assert topology.neighbors(1) == [2, 3]

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            full_topology(range(3)).neighbors(99)


class TestRingTopology:
    def test_every_node_has_two_neighbors(self):
        topology = ring_topology(range(8))
        assert all(topology.degree(node) == 2 for node in topology.nodes)

    def test_is_connected(self):
        assert ring_topology(range(8)).is_connected_graph

    def test_two_node_ring(self):
        topology = ring_topology([0, 1])
        assert topology.are_connected(0, 1)

    def test_single_node(self):
        topology = ring_topology([0])
        assert topology.num_edges == 0


class TestRandomTopology:
    def test_link_fraction_respected(self, rng):
        topology = random_topology(range(30), link_fraction=0.2, rng=rng)
        # Spanning connectivity may push slightly above the target but it
        # should stay in the same ballpark.
        assert 0.05 <= topology.connectivity_fraction() <= 0.35

    def test_connected_by_default(self, rng):
        topology = random_topology(range(25), link_fraction=0.2, rng=rng)
        assert topology.is_connected_graph

    def test_without_connectivity_guarantee(self, rng):
        topology = random_topology(
            range(25), link_fraction=0.05, rng=rng, ensure_connected=False
        )
        assert topology.num_edges >= 1

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            random_topology(range(5), link_fraction=1.5, rng=rng)

    def test_deterministic_given_rng(self):
        a = random_topology(range(12), 0.3, np.random.default_rng(5))
        b = random_topology(range(12), 0.3, np.random.default_rng(5))
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_subgraph_restricts_nodes(self, rng):
        topology = random_topology(range(10), 0.5, rng)
        sub = topology.subgraph([0, 1, 2])
        assert set(sub.nodes) == {0, 1, 2}


class TestRandomKTopology:
    def test_edge_count_scales_with_k_not_n_squared(self):
        topology = random_k_topology(range(400), 4, np.random.default_rng(0))
        # Spanning chain + up to n·k sampled links (self/duplicate draws
        # are discarded), far below the 79 800 full-graph edges.
        assert 399 <= topology.num_edges <= 400 * 5
        assert topology.num_nodes == 400

    def test_connected_by_default(self):
        topology = random_k_topology(range(50), 2, np.random.default_rng(1))
        assert topology.is_connected_graph

    def test_without_connectivity_guarantee(self):
        topology = random_k_topology(
            range(50), 2, np.random.default_rng(1), ensure_connected=False
        )
        assert topology.num_nodes == 50
        assert topology.num_edges >= 1

    def test_no_self_links(self):
        topology = random_k_topology(range(30), 3, np.random.default_rng(2))
        assert all(u != v for u, v in topology.graph.edges)

    def test_deterministic_given_rng(self):
        a = random_k_topology(range(40), 3, np.random.default_rng(7))
        b = random_k_topology(range(40), 3, np.random.default_rng(7))
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            random_k_topology(range(5), 0, np.random.default_rng(0))

    def test_tiny_populations(self):
        assert random_k_topology([1], 2, np.random.default_rng(0)).num_edges == 0
        assert random_k_topology([], 2, np.random.default_rng(0)).num_nodes == 0
