"""Tests for the additional layers (Sigmoid, LayerNorm)."""

import numpy as np
import pytest

from repro.nn.layers import Dense, LayerNorm, Sigmoid
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential


class TestSigmoid:
    def test_range_and_midpoint(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_gradient_at_midpoint(self):
        layer = Sigmoid()
        layer.forward(np.array([[0.0]]))
        assert layer.backward(np.array([[1.0]]))[0, 0] == pytest.approx(0.25)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Sigmoid().backward(np.zeros((1, 1)))


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        layer = LayerNorm(8)
        out = layer.forward(rng.normal(loc=5.0, scale=3.0, size=(10, 8)))
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_scale_and_shift_applied(self, rng):
        layer = LayerNorm(4)
        layer.gamma.value[:] = 2.0
        layer.beta.value[:] = 1.0
        out = layer.forward(rng.normal(size=(5, 4)))
        assert np.allclose(out.mean(axis=1), 1.0, atol=1e-6)

    def test_gradient_check(self, rng):
        layer = LayerNorm(5)
        x = rng.normal(size=(4, 5))
        loss_fn = MSELoss()
        targets = np.zeros((4, 5))

        layer.zero_grad()
        loss_fn.forward(layer.forward(x), targets)
        analytic_input_grad = layer.backward(loss_fn.backward())

        epsilon = 1e-6
        for i in range(4):
            for j in range(5):
                perturbed = x.copy()
                perturbed[i, j] += epsilon
                loss_plus = loss_fn.forward(layer.forward(perturbed), targets)
                perturbed[i, j] -= 2 * epsilon
                loss_minus = loss_fn.forward(layer.forward(perturbed), targets)
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                assert analytic_input_grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_parameter_gradients_accumulate(self, rng):
        layer = LayerNorm(6)
        layer.forward(rng.normal(size=(3, 6)))
        layer.backward(np.ones((3, 6)))
        assert np.any(layer.gamma.grad != 0)
        assert np.allclose(layer.beta.grad, 3.0)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(8).forward(rng.normal(size=(2, 4)))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
        with pytest.raises(ValueError):
            LayerNorm(4, epsilon=0.0)

    def test_composes_in_sequential(self, rng):
        model = Sequential(Dense(6, 8, rng=rng), LayerNorm(8), Sigmoid(), Dense(8, 2, rng=rng))
        out = model.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 2)
        model.backward(np.ones((3, 2)))
        assert all(p.grad is not None for p in model.parameters())
