"""Tests for functional helpers."""

import numpy as np
import pytest

from repro.nn.functional import log_softmax, one_hot, relu, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(6, 5)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)
        assert not np.any(np.isnan(probs))

    def test_log_softmax_consistent(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestOneHot:
    def test_shape_and_values(self):
        encoded = one_hot(np.array([0, 2]), 3)
        assert np.array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestRelu:
    def test_clips_negatives(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])
