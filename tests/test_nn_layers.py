"""Tests for layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dense,
    Dropout,
    Flatten,
    Identity,
    ReLU,
    ResidualBlock,
    Tanh,
    dense_residual_block,
)
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential


def numerical_gradient_check(model, x, epsilon=1e-6):
    """Compare analytic parameter gradients with central differences."""
    loss_fn = MSELoss()
    targets = np.zeros_like(model.forward(x))

    model.zero_grad()
    predictions = model.forward(x)
    loss_fn.forward(predictions, targets)
    model.backward(loss_fn.backward())
    analytic = [p.grad.copy() for p in model.parameters()]

    for index, param in enumerate(model.parameters()):
        flat = param.value.ravel()
        numeric = np.zeros_like(flat)
        for i in range(min(flat.size, 12)):  # spot-check a handful of coordinates
            original = flat[i]
            flat[i] = original + epsilon
            loss_plus = loss_fn.forward(model.forward(x), targets)
            flat[i] = original - epsilon
            loss_minus = loss_fn.forward(model.forward(x), targets)
            flat[i] = original
            numeric[i] = (loss_plus - loss_minus) / (2 * epsilon)
        analytic_flat = analytic[index].ravel()
        for i in range(min(flat.size, 12)):
            assert analytic_flat[i] == pytest.approx(numeric[i], rel=1e-4, abs=1e-7)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        assert layer.forward(np.zeros((7, 5))).shape == (7, 3)

    def test_rejects_wrong_input_width(self, rng):
        with pytest.raises(ValueError):
            Dense(5, 3, rng=rng).forward(np.zeros((2, 4)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(5, 3, rng=rng).backward(np.zeros((2, 3)))

    def test_gradient_check(self, rng):
        layer = Dense(4, 3, rng=rng)
        numerical_gradient_check(layer, rng.normal(size=(5, 4)))

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng=rng)


class TestActivations:
    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_relu_gradient_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_relu_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all(np.abs(out) <= 1.0)

    def test_tanh_gradient(self):
        layer = Tanh()
        layer.forward(np.array([[0.0]]))
        assert layer.backward(np.array([[1.0]]))[0, 0] == pytest.approx(1.0)

    def test_identity_passthrough(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        layer = Identity()
        assert np.array_equal(layer.forward(x), x)
        assert np.array_equal(layer.backward(x), x)


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == (2, 3, 4)

    def test_dropout_eval_mode_is_identity(self, rng):
        layer = Dropout(rate=0.5, rng=rng)
        layer.eval()
        x = np.ones((4, 10))
        assert np.array_equal(layer.forward(x), x)

    def test_dropout_training_zeroes_some(self, rng):
        layer = Dropout(rate=0.5, rng=rng)
        out = layer.forward(np.ones((10, 100)))
        assert np.any(out == 0.0)

    def test_dropout_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)


class TestResidualBlock:
    def test_identity_plus_body(self, rng):
        block = dense_residual_block(6, rng=rng)
        x = rng.normal(size=(3, 6))
        out = block.forward(x)
        assert out.shape == x.shape
        body_out = block.body.forward(x)
        assert np.allclose(out, x + body_out)

    def test_gradient_check(self, rng):
        block = dense_residual_block(4, hidden=5, rng=rng)
        numerical_gradient_check(block, rng.normal(size=(3, 4)))

    def test_parameters_exposed(self, rng):
        block = dense_residual_block(4, rng=rng)
        assert len(block.parameters()) == 4

    def test_stacked_blocks_gradient_check(self, rng):
        model = Sequential(
            Dense(3, 4, rng=rng),
            ReLU(),
            dense_residual_block(4, rng=rng),
            Dense(4, 2, rng=rng),
        )
        numerical_gradient_check(model, rng.normal(size=(4, 3)))
