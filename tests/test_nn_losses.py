"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        targets = np.array([0, 3, 5, 9])
        assert loss_fn.forward(logits, targets) == pytest.approx(np.log(10))

    def test_perfect_prediction_gives_small_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss_fn.forward(logits, np.array([1, 2])) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_sums_to_zero_per_row(self):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        loss_fn.forward(logits, np.array([0, 1, 2, 3, 0]))
        grad = loss_fn.backward()
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_matches_numerical(self):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 0, 3])
        loss_fn.forward(logits, targets)
        analytic = loss_fn.backward()
        epsilon = 1e-6
        for i in range(3):
            for j in range(4):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                loss_plus = CrossEntropyLoss().forward(perturbed, targets)
                perturbed[i, j] -= 2 * epsilon
                loss_minus = CrossEntropyLoss().forward(perturbed, targets)
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                assert analytic[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros((3, 2)), np.array([0, 1]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_one_dimensional_logits_rejected(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros(3), np.array([0, 1, 2]))


class TestMSELoss:
    def test_zero_for_equal_inputs(self):
        loss_fn = MSELoss()
        values = np.array([[1.0, 2.0]])
        assert loss_fn.forward(values, values) == 0.0

    def test_value(self):
        loss_fn = MSELoss()
        assert loss_fn.forward(np.array([2.0, 0.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_gradient(self):
        loss_fn = MSELoss()
        loss_fn.forward(np.array([3.0]), np.array([1.0]))
        assert loss_fn.backward()[0] == pytest.approx(4.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(2), np.zeros(3))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()
