"""Tests for Module / Parameter / Sequential."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.module import Module, Parameter, Sequential


class TestParameter:
    def test_grad_initialised_to_zero(self):
        param = Parameter(np.ones((2, 3)))
        assert param.grad.shape == (2, 3)
        assert np.all(param.grad == 0)

    def test_zero_grad(self):
        param = Parameter(np.ones(4))
        param.grad += 2.0
        param.zero_grad()
        assert np.all(param.grad == 0)

    def test_size_and_shape(self):
        param = Parameter(np.ones((3, 5)), name="w")
        assert param.size == 15
        assert param.shape == (3, 5)
        assert "w" in repr(param)


class TestSequential:
    def test_forward_chains_modules(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        out = model.forward(np.zeros((3, 4)))
        assert out.shape == (3, 2)

    def test_parameters_collected_from_children(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        assert len(model.parameters()) == 4  # two Dense layers × (W, b)

    def test_zero_grad_resets_all(self, rng):
        model = Sequential(Dense(4, 4, rng=rng))
        model.forward(np.ones((2, 4)))
        model.backward(np.ones((2, 4)))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dense(4, 4, rng=rng), ReLU())
        model.eval()
        assert not model.training
        assert all(not child.training for child in model.children())
        model.train()
        assert model.training

    def test_slice_shares_parameters(self, rng):
        model = Sequential(Dense(4, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        prefix = model.slice(0, 2)
        assert prefix[0] is model[0]
        # Mutating through the slice is visible in the original.
        prefix[0].weight.value[0, 0] = 123.0
        assert model[0].weight.value[0, 0] == 123.0

    def test_len_getitem_iter(self, rng):
        model = Sequential(Dense(2, 2, rng=rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 2

    def test_append(self, rng):
        model = Sequential(Dense(2, 2, rng=rng))
        model.append(ReLU())
        assert len(model) == 2

    def test_num_parameters(self, rng):
        model = Sequential(Dense(3, 5, rng=rng))
        assert model.num_parameters() == 3 * 5 + 5

    def test_base_module_raises_not_implemented(self):
        module = Module()
        with pytest.raises(NotImplementedError):
            module.forward(np.zeros((1, 1)))
        with pytest.raises(NotImplementedError):
            module.backward(np.zeros((1, 1)))
