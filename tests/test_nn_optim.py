"""Tests for the SGD optimizer."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD


def make_param(value):
    return Parameter(np.asarray(value, dtype=float))


class TestSGD:
    def test_basic_step_moves_against_gradient(self):
        param = make_param([1.0])
        optimizer = SGD([param], learning_rate=0.1, momentum=0.0)
        param.grad[:] = 2.0
        optimizer.step()
        assert param.value[0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        param = make_param([0.0])
        optimizer = SGD([param], learning_rate=0.1, momentum=0.9)
        for _ in range(2):
            param.zero_grad()
            param.grad[:] = 1.0
            optimizer.step()
        # First step: -0.1; second: velocity = 0.9*(-0.1) - 0.1 = -0.19 → total -0.29.
        assert param.value[0] == pytest.approx(-0.29)

    def test_weight_decay_shrinks_weights(self):
        param = make_param([1.0])
        optimizer = SGD([param], learning_rate=0.1, momentum=0.0, weight_decay=0.5)
        param.grad[:] = 0.0
        optimizer.step()
        assert param.value[0] < 1.0

    def test_zero_grad(self):
        param = make_param([1.0])
        optimizer = SGD([param], learning_rate=0.1)
        param.grad[:] = 3.0
        optimizer.zero_grad()
        assert np.all(param.grad == 0.0)

    def test_minimises_quadratic(self):
        param = make_param([5.0])
        optimizer = SGD([param], learning_rate=0.1, momentum=0.9)
        for _ in range(200):
            param.zero_grad()
            param.grad[:] = 2 * param.value  # d/dx of x^2
            optimizer.step()
        assert abs(param.value[0]) < 1e-3

    def test_set_learning_rate(self):
        optimizer = SGD([make_param([1.0])], learning_rate=0.1)
        optimizer.set_learning_rate(0.01)
        assert optimizer.learning_rate == 0.01
        with pytest.raises(ValueError):
            optimizer.set_learning_rate(0.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], learning_rate=0.1, momentum=1.0)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], learning_rate=0.0)
