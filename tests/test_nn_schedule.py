"""Tests for learning-rate schedules."""

import pytest

from repro.nn.schedule import ConstantSchedule, ReduceOnPlateau, StepDecay


class TestConstantSchedule:
    def test_never_changes(self):
        schedule = ConstantSchedule(0.01)
        for _ in range(5):
            assert schedule.step(0.5) == 0.01

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestStepDecay:
    def test_decays_every_step_size(self):
        schedule = StepDecay(1.0, step_size=2, factor=0.5)
        rates = [schedule.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.5, 0.5, 0.25])

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=2, factor=1.5)


class TestReduceOnPlateau:
    def test_reduces_after_patience_without_improvement(self):
        schedule = ReduceOnPlateau(1.0, factor=0.2, patience=3)
        schedule.step(0.5)
        for _ in range(3):
            schedule.step(0.5)  # no improvement
        assert schedule.learning_rate == pytest.approx(0.2)

    def test_improvement_resets_patience(self):
        schedule = ReduceOnPlateau(1.0, factor=0.2, patience=2)
        schedule.step(0.5)
        schedule.step(0.5)
        schedule.step(0.6)  # improvement resets the counter
        schedule.step(0.6)
        assert schedule.learning_rate == pytest.approx(1.0)

    def test_respects_min_lr(self):
        schedule = ReduceOnPlateau(1e-5, factor=0.1, patience=1, min_lr=1e-6)
        for _ in range(10):
            schedule.step(0.5)
        assert schedule.learning_rate >= 1e-6

    def test_min_mode(self):
        schedule = ReduceOnPlateau(1.0, factor=0.5, patience=2, mode="min")
        schedule.step(1.0)
        schedule.step(0.5)  # improvement in min mode
        schedule.step(0.6)
        schedule.step(0.6)
        assert schedule.learning_rate == pytest.approx(0.5)

    def test_none_metric_is_noop(self):
        schedule = ReduceOnPlateau(1.0, patience=1)
        assert schedule.step(None) == 1.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(1.0, mode="other")

    def test_paper_defaults_are_constructible(self):
        # 0.2 for 10 agents, 0.5 for larger populations.
        assert ReduceOnPlateau(0.001, factor=0.2).learning_rate == 0.001
        assert ReduceOnPlateau(0.001, factor=0.5).learning_rate == 0.001
