"""Tests for parameter flattening."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.module import Sequential
from repro.nn.serialization import (
    get_flat_gradients,
    get_flat_parameters,
    parameter_count,
    set_flat_parameters,
)


class TestFlattening:
    def test_roundtrip(self, rng):
        model = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        flat = get_flat_parameters(model)
        assert flat.size == parameter_count(model)
        set_flat_parameters(model, flat * 2.0)
        assert np.allclose(get_flat_parameters(model), flat * 2.0)

    def test_set_wrong_size_rejected(self, rng):
        model = Sequential(Dense(3, 4, rng=rng))
        with pytest.raises(ValueError):
            set_flat_parameters(model, np.zeros(5))

    def test_empty_model(self):
        model = Sequential(ReLU())
        assert get_flat_parameters(model).size == 0
        assert parameter_count(model) == 0

    def test_flat_gradients(self, rng):
        model = Sequential(Dense(3, 2, rng=rng))
        model.forward(np.ones((4, 3)))
        model.backward(np.ones((4, 2)))
        grads = get_flat_gradients(model)
        assert grads.size == parameter_count(model)
        assert np.any(grads != 0)

    def test_transfer_between_identically_shaped_models(self, rng):
        source = Sequential(Dense(3, 3, rng=np.random.default_rng(1)))
        target = Sequential(Dense(3, 3, rng=np.random.default_rng(2)))
        set_flat_parameters(target, get_flat_parameters(source))
        x = rng.normal(size=(2, 3))
        assert np.allclose(source.forward(x), target.forward(x))
