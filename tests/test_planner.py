"""Tests for the scalable round planner (`repro.core.planner`).

Two contracts are enforced.  First, *exactness under full candidate
budget*: with ``k ≥ n − 1`` the pruned planner must be decision-identical
to the dense kernel and the scalar oracle for any population and topology.
Second, *incremental soundness*: replaying dynamics events against a
persistent planner must yield the same plan a from-scratch planner would
produce, while recomputing only the dirtied rows (the O(d·k·s) bound,
checked through the planner's operation counters).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.config import ComDMLConfig, normalize_planner_mode
from repro.core.pairing import greedy_pairing, greedy_pairing_reference
from repro.core.planner import PrunedPlanner, build_planner
from repro.core.profiling import profile_architecture
from repro.core.scheduler import DecentralizedPairingScheduler
from repro.core.shard import ShardedPlanner
from repro.core.workload import individual_training_time
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import (
    full_topology,
    random_k_topology,
    random_topology,
    ring_topology,
)

PROFILE = profile_architecture(resnet56_spec(), granularity=9)

AGENT_STRATEGY = st.tuples(
    st.sampled_from([4.0, 2.0, 1.0, 0.5, 0.2, 0.7]),          # cpu share
    st.sampled_from([0.0, 10.0, 20.0, 50.0, 100.0]),          # bandwidth (0 = offline)
    st.integers(min_value=0, max_value=3_000),                # samples
    st.sampled_from([50, 100, 128]),                          # batch size
)

TOPOLOGY_KINDS = ("full", "ring", "random", "random-k")


def _build_agents(population) -> list[Agent]:
    return [
        Agent(
            agent_id=index,
            profile=ResourceProfile(cpu, bandwidth),
            num_samples=samples,
            batch_size=batch,
        )
        for index, (cpu, bandwidth, samples, batch) in enumerate(population)
    ]


def _link_model(agents, topology_kind: str, seed: int) -> LinkModel:
    ids = [agent.agent_id for agent in agents]
    if topology_kind == "ring":
        return LinkModel(ring_topology(ids))
    if topology_kind == "random":
        return LinkModel(random_topology(ids, 0.4, np.random.default_rng(seed)))
    if topology_kind == "random-k":
        return LinkModel(random_k_topology(ids, 3, np.random.default_rng(seed)))
    return LinkModel(full_topology(ids))


def _full_budget_planner(agents, link_model, **kwargs) -> PrunedPlanner:
    """A planner whose candidate budget covers every possible peer."""
    return PrunedPlanner(
        PROFILE, link_model, top_k=max(len(agents) - 1, 1), **kwargs
    )


# ----------------------------------------------------------------------
# Tentpole property: sharded ≡ pruned ≡ dense ≡ scalar at full budget
# ----------------------------------------------------------------------
class TestPrunedDenseEquivalence:
    @given(
        population=st.lists(AGENT_STRATEGY, min_size=1, max_size=12),
        topology_kind=st.sampled_from(TOPOLOGY_KINDS),
        threshold=st.sampled_from([0.0, 0.2, 0.95]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_four_way_decision_identity(
        self, population, topology_kind, threshold, seed
    ):
        agents = _build_agents(population)
        link_model = _link_model(agents, topology_kind, seed)
        planner = _full_budget_planner(
            agents, link_model, improvement_threshold=threshold
        )
        pruned, _ = planner.plan(agents)
        dense = greedy_pairing(
            agents, link_model, PROFILE, improvement_threshold=threshold
        )
        scalar = greedy_pairing_reference(
            agents, link_model, PROFILE, improvement_threshold=threshold
        )
        assert pruned == dense == scalar
        sharded_planner = ShardedPlanner(
            PROFILE,
            link_model,
            top_k=max(len(agents) - 1, 1),
            improvement_threshold=threshold,
            shards=2,
            shard_min_population=0,
        )
        try:
            sharded, _ = sharded_planner.plan(agents)
            assert sharded == pruned
        finally:
            sharded_planner.close()

    @given(
        population=st.lists(AGENT_STRATEGY, min_size=2, max_size=10),
        batch_size=st.sampled_from([25, 100, 200]),
    )
    @settings(max_examples=30, deadline=None)
    def test_identity_with_batch_override(self, population, batch_size):
        agents = _build_agents(population)
        link_model = _link_model(agents, "full", 0)
        planner = _full_budget_planner(agents, link_model, batch_size=batch_size)
        pruned, _ = planner.plan(agents)
        assert pruned == greedy_pairing(
            agents, link_model, PROFILE, batch_size=batch_size
        )

    def test_broadcast_times_match_scalar_oracle(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100), (2.0, 50.0, 500, 100)])
        link_model = _link_model(agents, "full", 0)
        _, taus_by_id = _full_budget_planner(agents, link_model).plan(agents)
        for agent in agents:
            assert taus_by_id[agent.agent_id] == individual_training_time(
                agent, PROFILE, agent.batch_size
            )

    @given(
        population=st.lists(AGENT_STRATEGY, min_size=6, max_size=14),
        topology_kind=st.sampled_from(TOPOLOGY_KINDS),
        top_k=st.sampled_from([1, 2, 3]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_small_budget_plans_are_well_formed(
        self, population, topology_kind, top_k, seed
    ):
        """Pruning may change pairings but never the plan's invariants."""
        agents = _build_agents(population)
        link_model = _link_model(agents, topology_kind, seed)
        planner = PrunedPlanner(PROFILE, link_model, top_k=top_k)
        decisions, taus_by_id = planner.plan(agents)
        covered: list[int] = []
        for decision in decisions:
            covered.append(decision.slow_id)
            if decision.fast_id is not None:
                covered.append(decision.fast_id)
                # A formed pair must beat the slow agent training alone.
                assert decision.estimate.pair_time < taus_by_id[decision.slow_id]
                assert decision.offloaded_layers > 0
        assert sorted(covered) == [agent.agent_id for agent in agents]

    def test_complete_graph_pool_restricts_candidates(self):
        """On a complete graph the planner prunes through a shared global
        top-(k+1) τ̂ pool: every helper it picks must come from it."""
        rng = np.random.default_rng(3)
        population = [
            (
                float(rng.choice([4.0, 2.0, 1.0, 0.5])),
                50.0,
                int(rng.integers(200, 3_000)),
                100,
            )
            for _ in range(30)
        ]
        agents = _build_agents(population)
        full = LinkModel(full_topology([a.agent_id for a in agents]))
        top_k = 5
        planner = PrunedPlanner(PROFILE, full, top_k=top_k)
        decisions, taus_by_id = planner.plan(agents)
        pool_cutoff = sorted(taus_by_id.values())[top_k]
        paired = [d for d in decisions if d.fast_id is not None]
        assert paired  # heterogeneous speeds must produce offloading
        for decision in paired:
            assert taus_by_id[decision.fast_id] <= pool_cutoff


# ----------------------------------------------------------------------
# Incremental replanning
# ----------------------------------------------------------------------
EVENT_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from(["churn", "arrive", "depart", "none"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=6,
)


class TestIncrementalReplanning:
    @given(
        population=st.lists(AGENT_STRATEGY, min_size=5, max_size=14),
        events=EVENT_STRATEGY,
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_replayed_dynamics_match_from_scratch_plans(
        self, population, events, seed
    ):
        agents = _build_agents(population)
        link_model = _link_model(agents, "random", seed)
        planner = _full_budget_planner(agents, link_model)
        planner.plan(agents)
        rng = np.random.default_rng(seed)
        next_id = len(agents)
        for kind, value in events:
            if kind == "churn" and agents:
                victim = agents[value % len(agents)]
                victim.update_profile(
                    ResourceProfile(
                        float(rng.choice([4.0, 2.0, 1.0, 0.5, 0.2])),
                        float(rng.choice([0.0, 10.0, 50.0, 100.0])),
                    )
                )
            elif kind == "arrive":
                newcomer = Agent(
                    agent_id=next_id,
                    profile=ResourceProfile(2.0, 50.0),
                    num_samples=1_000,
                    batch_size=100,
                )
                next_id += 1
                agents.append(newcomer)
                link_model.topology.add_agent(newcomer.agent_id)
                planner.invalidate_topology([newcomer.agent_id])
            elif kind == "depart" and len(agents) > 2:
                gone = agents.pop(value % len(agents))
                link_model.topology.remove_agent(gone.agent_id)
                planner.invalidate_topology([gone.agent_id])
            # Full budget must follow the population as it grows.
            planner.top_k = max(len(agents) - 1, 1)
            incremental, _ = planner.plan(agents)
            fresh, _ = _full_budget_planner(agents, link_model).plan(agents)
            assert incremental == fresh

    def test_unchanged_round_recomputes_nothing(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 4 + [(4.0, 100.0, 500, 50)])
        link_model = _link_model(agents, "random", 1)
        planner = _full_budget_planner(agents, link_model)
        first, _ = planner.plan(agents)
        second, _ = planner.plan(agents)
        assert second == first
        assert planner.stats.last_rows_recomputed == 0
        assert planner.stats.last_pairs_evaluated == 0
        assert planner.stats.last_rows_reused == len(agents)

    def test_operation_count_is_bounded_by_dirty_rows(self):
        """A round with d changed agents costs O(d·k·s), not O(n·k·s)."""
        rng = np.random.default_rng(7)
        population = [
            (
                float(rng.choice([4.0, 2.0, 1.0, 0.5])),
                float(rng.choice([10.0, 50.0, 100.0])),
                int(rng.integers(200, 3_000)),
                100,
            )
            for _ in range(40)
        ]
        agents = _build_agents(population)
        link_model = _link_model(agents, "random-k", 11)
        top_k = 4
        planner = PrunedPlanner(PROFILE, link_model, top_k=top_k)
        planner.plan(agents)
        previous_cand_ids = planner.state.cand_ids.copy()

        changed = [agents[3], agents[21], agents[33]]
        for victim in changed:
            victim.update_profile(
                ResourceProfile(
                    victim.profile.cpu_share * 2.0, victim.profile.bandwidth_mbps
                )
            )
        planner.plan(agents)

        # Dirty closure: each changed agent's own row, its topology
        # neighborhood (its τ̂ feeds their candidate selection), and any
        # row whose cached block still references it.
        dirty_ids = {victim.agent_id for victim in changed}
        affected = set(dirty_ids)
        for agent_id in dirty_ids:
            affected.update(link_model.topology.neighbors(agent_id))
        referencing = int(
            np.isin(previous_cand_ids, np.array(sorted(dirty_ids))).any(axis=1).sum()
        )
        bound = len(affected) + referencing
        assert 0 < planner.stats.last_rows_recomputed <= bound
        assert planner.stats.last_rows_recomputed < len(agents)
        assert (
            planner.stats.last_pairs_evaluated
            <= planner.stats.last_rows_recomputed * top_k * PROFILE.num_options
        )

    def test_invalidate_all_forces_full_rebuild(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 5)
        link_model = _link_model(agents, "full", 0)
        planner = _full_budget_planner(agents, link_model)
        planner.plan(agents)
        rebuilds = planner.stats.full_rebuilds
        planner.invalidate_all()
        planner.plan(agents)
        assert planner.stats.full_rebuilds == rebuilds + 1

    def test_departure_without_invalidate_still_matches(self):
        """Membership diffing alone (no explicit event) must stay sound."""
        agents = _build_agents(
            [(0.5, 50.0, 1_000, 100), (4.0, 100.0, 500, 50), (1.0, 20.0, 800, 100)]
        )
        link_model = _link_model(agents, "full", 0)
        planner = _full_budget_planner(agents, link_model)
        planner.plan(agents)
        agents.pop(1)
        incremental, _ = planner.plan(agents)
        fresh, _ = _full_budget_planner(agents, link_model).plan(agents)
        assert incremental == fresh


# ----------------------------------------------------------------------
# Selection, configuration, and validation
# ----------------------------------------------------------------------
class TestPlannerSelection:
    def test_dense_mode_builds_no_planner(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 3)
        link_model = _link_model(agents, "full", 0)
        assert build_planner(PROFILE, link_model, mode="dense") is None

    def test_pruned_mode_engages_at_any_size(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 3)
        link_model = _link_model(agents, "full", 0)
        planner = build_planner(PROFILE, link_model, mode="pruned")
        assert planner is not None
        assert planner.engages(1)
        assert planner.engages(10_000)

    def test_auto_mode_engages_at_threshold(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 3)
        link_model = _link_model(agents, "full", 0)
        planner = build_planner(PROFILE, link_model, mode="auto", threshold=256)
        assert not planner.engages(255)
        assert planner.engages(256)

    def test_scheduler_dense_and_engaged_planner_agree(
        self, small_registry, small_link_model, resnet56_profile
    ):
        """The scheduler's planner branch returns the same decisions and
        broadcast times as its dense branch when k covers every peer."""
        dense_scheduler = DecentralizedPairingScheduler(
            registry=small_registry,
            link_model=small_link_model,
            profile=resnet56_profile,
            rng=np.random.default_rng(0),
        )
        planner = PrunedPlanner(
            resnet56_profile,
            small_link_model,
            top_k=len(small_registry.ids) - 1,
        )
        planner_scheduler = DecentralizedPairingScheduler(
            registry=small_registry,
            link_model=small_link_model,
            profile=resnet56_profile,
            rng=np.random.default_rng(0),
            planner=planner,
        )
        assert planner_scheduler.plan_round() == dense_scheduler.plan_round()
        assert (
            planner_scheduler.shared_training_times
            == dense_scheduler.shared_training_times
        )
        assert planner.stats.rounds == 1

    def test_config_normalizes_and_validates_planner_mode(self):
        assert ComDMLConfig(planner="PRUNED").planner == "pruned"
        assert normalize_planner_mode("Auto") == "auto"
        with pytest.raises(ValueError, match="planner"):
            ComDMLConfig(planner="bogus")

    @pytest.mark.parametrize(
        "field, value",
        [("planner_top_k", 0), ("planner_top_k", -3), ("planner_threshold", 0)],
    )
    def test_config_rejects_non_positive_planner_sizes(self, field, value):
        with pytest.raises(ValueError):
            ComDMLConfig(**{field: value})

    def test_planner_rejects_invalid_arguments(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 2)
        link_model = _link_model(agents, "full", 0)
        with pytest.raises(ValueError):
            PrunedPlanner(PROFILE, link_model, top_k=0)
        with pytest.raises(ValueError):
            PrunedPlanner(PROFILE, link_model, engage_threshold=0)
        with pytest.raises(ValueError):
            PrunedPlanner(PROFILE, link_model, batch_size=0)

    def test_empty_round_plans_empty(self):
        agents = _build_agents([(0.5, 50.0, 1_000, 100)] * 2)
        link_model = _link_model(agents, "full", 0)
        planner = _full_budget_planner(agents, link_model)
        decisions, taus_by_id = planner.plan([])
        assert decisions == []
        assert taus_by_id == {}


class TestFastDecisionPaths:
    """The ``__dict__``-filling decision constructors match the dataclasses."""

    def test_fast_decision_paths_match(self):
        from repro.core.pairing import _solo_decision
        from repro.core.planner import _fast_pair_decision, _fast_solo_decision
        from repro.core.workload import OffloadEstimate
        from repro.core.pairing import PairingDecision

        fast = _fast_pair_decision(7, 3, 25, 1.5, 0.25, 0.125, 0.75, 2.0)
        plain = PairingDecision(
            slow_id=7,
            fast_id=3,
            offloaded_layers=25,
            estimate=OffloadEstimate(
                offloaded_layers=25,
                slow_time=1.5,
                fast_own_time=0.25,
                communication_time=0.125,
                fast_offload_time=0.75,
                pair_time=2.0,
            ),
        )
        assert fast == plain
        assert hash(fast) == hash(plain)
        assert fast.estimate.fast_chain_time == plain.estimate.fast_chain_time
        assert vars(fast) == vars(plain)
        assert vars(fast.estimate) == vars(plain.estimate)

        fast_solo = _fast_solo_decision(11, 4.5)
        plain_solo = _solo_decision(11, 4.5)
        assert fast_solo == plain_solo
        assert vars(fast_solo) == vars(plain_solo)
        assert vars(fast_solo.estimate) == vars(plain_solo.estimate)
        # The fast path cannot silently diverge if the dataclasses grow
        # fields: the wholesale __dict__ fill must cover every field.
        import dataclasses

        assert set(vars(fast)) == {f.name for f in dataclasses.fields(PairingDecision)}
        assert set(vars(fast.estimate)) == {
            f.name for f in dataclasses.fields(OffloadEstimate)
        }
