"""Tests for the distance-correlation statistic and defense."""

import numpy as np
import pytest

from repro.privacy.distance_correlation import (
    DistanceCorrelationDefense,
    distance_correlation,
)


class TestDistanceCorrelationStatistic:
    def test_identical_data_has_correlation_one(self, rng):
        x = rng.normal(size=(40, 5))
        assert distance_correlation(x, x) == pytest.approx(1.0)

    def test_linear_transform_has_high_correlation(self, rng):
        x = rng.normal(size=(50, 4))
        y = x @ rng.normal(size=(4, 3))
        assert distance_correlation(x, y) > 0.7

    def test_independent_data_has_low_correlation(self, rng):
        # The empirical statistic is positively biased at finite sample size,
        # so "low" means well below the ~0.7+ seen for dependent data.
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=(200, 4))
        assert distance_correlation(x, y) < 0.3

    def test_bounded_between_zero_and_one(self, rng):
        for _ in range(5):
            x = rng.normal(size=(30, 3))
            y = rng.normal(size=(30, 6))
            value = distance_correlation(x, y)
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_one_dimensional_inputs_supported(self, rng):
        x = rng.normal(size=60)
        assert distance_correlation(x, 2 * x + 1) > 0.95

    def test_constant_input_gives_zero(self, rng):
        x = np.ones((20, 3))
        y = rng.normal(size=(20, 3))
        assert distance_correlation(x, y) == 0.0

    def test_sample_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            distance_correlation(rng.normal(size=(10, 2)), rng.normal(size=(11, 2)))

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            distance_correlation(np.zeros((1, 2)), np.zeros((1, 2)))


class TestDistanceCorrelationDefense:
    def test_reduces_correlation_towards_target(self, rng):
        inputs = rng.normal(size=(60, 8))
        activations = np.tanh(inputs @ rng.normal(size=(8, 6)))
        defense = DistanceCorrelationDefense(alpha=0.5, rng=np.random.default_rng(1))
        protected = defense.protect(inputs, activations)
        baseline, achieved = defense.last_measurement
        assert achieved < baseline
        assert achieved <= 0.65 * baseline + 0.05

    def test_smaller_alpha_means_more_reduction(self, rng):
        inputs = rng.normal(size=(60, 8))
        activations = np.tanh(inputs @ rng.normal(size=(8, 6)))
        strong = DistanceCorrelationDefense(alpha=0.2, rng=np.random.default_rng(2))
        weak = DistanceCorrelationDefense(alpha=0.8, rng=np.random.default_rng(2))
        strong.protect(inputs, activations)
        weak.protect(inputs, activations)
        assert strong.last_measurement[1] < weak.last_measurement[1]

    def test_output_shape_preserved(self, rng):
        inputs = rng.normal(size=(30, 4))
        activations = rng.normal(size=(30, 7))
        defense = DistanceCorrelationDefense(alpha=0.5)
        assert defense.protect(inputs, activations).shape == activations.shape

    def test_tiny_batch_passthrough(self, rng):
        defense = DistanceCorrelationDefense(alpha=0.5)
        activations = rng.normal(size=(1, 4))
        assert np.array_equal(defense.protect(activations, activations), activations)

    def test_make_transform_callable(self, rng):
        defense = DistanceCorrelationDefense(alpha=0.5, rng=np.random.default_rng(3))
        transform = defense.make_transform()
        activations = rng.normal(size=(40, 6))
        protected = transform(activations)
        assert protected.shape == activations.shape
        assert not np.array_equal(protected, activations)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DistanceCorrelationDefense(alpha=1.5)
