"""Tests for the differential-privacy mechanism."""

import numpy as np
import pytest

from repro.privacy.differential_privacy import DifferentialPrivacy


class TestClipping:
    def test_clips_large_vectors(self):
        mechanism = DifferentialPrivacy(clip_norm=1.0)
        vector = np.array([3.0, 4.0])  # norm 5
        clipped = mechanism.clip(vector)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)

    def test_small_vectors_unchanged(self):
        mechanism = DifferentialPrivacy(clip_norm=10.0)
        vector = np.array([3.0, 4.0])
        assert np.array_equal(mechanism.clip(vector), vector)

    def test_zero_vector_unchanged(self):
        mechanism = DifferentialPrivacy(clip_norm=1.0)
        assert np.array_equal(mechanism.clip(np.zeros(3)), np.zeros(3))


class TestNoise:
    def test_noise_changes_values(self):
        mechanism = DifferentialPrivacy(epsilon=0.5, rng=np.random.default_rng(0))
        vector = np.ones(100)
        assert not np.array_equal(mechanism.add_noise(vector), vector)

    def test_smaller_epsilon_means_more_noise(self):
        strict = DifferentialPrivacy(epsilon=0.1, rng=np.random.default_rng(1))
        loose = DifferentialPrivacy(epsilon=10.0, rng=np.random.default_rng(1))
        vector = np.zeros(10_000)
        strict_noise = np.abs(strict.add_noise(vector)).mean()
        loose_noise = np.abs(loose.add_noise(vector)).mean()
        assert strict_noise > loose_noise

    def test_gaussian_mechanism_supported(self):
        mechanism = DifferentialPrivacy(mechanism="gaussian", rng=np.random.default_rng(2))
        assert mechanism.noise_scale > 0
        assert mechanism.add_noise(np.zeros(10)).shape == (10,)

    def test_empty_vector(self):
        mechanism = DifferentialPrivacy()
        assert mechanism.add_noise(np.array([])).size == 0

    def test_privatize_combines_clip_and_noise(self):
        mechanism = DifferentialPrivacy(
            epsilon=1.0, clip_norm=1.0, rng=np.random.default_rng(3)
        )
        vector = np.full(50, 10.0)
        private = mechanism.privatize(vector)
        assert private.shape == vector.shape
        assert not np.array_equal(private, vector)

    def test_callable_interface(self):
        mechanism = DifferentialPrivacy(rng=np.random.default_rng(4))
        assert mechanism(np.ones(5)).shape == (5,)


class TestValidation:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(epsilon=0.0)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(delta=1.5)

    def test_invalid_mechanism_rejected(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(mechanism="exponential")

    def test_invalid_clip_norm_rejected(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(clip_norm=0.0)
