"""Tests for the patch-shuffling defense."""

import numpy as np
import pytest

from repro.privacy.patch_shuffle import PatchShuffle


class TestPatchShuffle:
    def test_preserves_shape_and_values(self, rng):
        shuffle = PatchShuffle(num_patches=4, rng=np.random.default_rng(0))
        activations = rng.normal(size=(10, 16))
        out = shuffle(activations)
        assert out.shape == activations.shape
        assert np.allclose(np.sort(out, axis=1), np.sort(activations, axis=1))

    def test_actually_permutes(self, rng):
        shuffle = PatchShuffle(num_patches=8, rng=np.random.default_rng(1))
        activations = np.tile(np.arange(32, dtype=float), (5, 1))
        out = shuffle(activations)
        assert not np.array_equal(out, activations)

    def test_batch_level_shuffle_consistent_across_rows(self):
        shuffle = PatchShuffle(num_patches=4, rng=np.random.default_rng(2), per_sample=False)
        activations = np.vstack([np.arange(8, dtype=float), np.arange(8, dtype=float)])
        out = shuffle(activations)
        assert np.array_equal(out[0], out[1])

    def test_per_sample_shuffle_differs_across_rows(self):
        shuffle = PatchShuffle(num_patches=8, rng=np.random.default_rng(3), per_sample=True)
        activations = np.tile(np.arange(64, dtype=float), (20, 1))
        out = shuffle(activations)
        assert any(not np.array_equal(out[0], out[i]) for i in range(1, 20))

    def test_more_patches_than_features_handled(self, rng):
        shuffle = PatchShuffle(num_patches=100, rng=np.random.default_rng(4))
        activations = rng.normal(size=(3, 5))
        assert shuffle(activations).shape == (3, 5)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            PatchShuffle()(rng.normal(size=(3, 4, 5)))

    def test_invalid_patch_count_rejected(self):
        with pytest.raises(ValueError):
            PatchShuffle(num_patches=0)
