"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.profiling import profile_architecture
from repro.core.workload import estimate_offload_time, individual_training_time
from repro.data.partition import dirichlet_partition, iid_partition, partition_sizes
from repro.models.resnet import resnet56_spec
from repro.network.allreduce import (
    allreduce_average,
    halving_doubling_allreduce,
    ring_allreduce,
)
from repro.network.compression import QuantizationCompressor
from repro.network.link import LinkModel
from repro.network.topology import full_topology
from repro.nn.functional import one_hot, softmax
from repro.privacy.differential_privacy import DifferentialPrivacy
from repro.privacy.patch_shuffle import PatchShuffle
from repro.utils.units import bytes_per_second_to_mbps, mbps_to_bytes_per_second

RESNET56 = resnet56_spec()
PROFILE = profile_architecture(RESNET56, granularity=9)


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_bandwidth_roundtrip(mbps):
    assert bytes_per_second_to_mbps(mbps_to_bytes_per_second(mbps)) == pytest.approx(mbps)


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------
@given(
    total=st.integers(min_value=10, max_value=2_000),
    agents=st.integers(min_value=1, max_value=10),
)
def test_partition_sizes_sum_to_total(total, agents):
    if total < agents:
        return
    sizes = partition_sizes(total, agents)
    assert sum(sizes) == total
    assert all(size >= 1 for size in sizes)


@given(
    num_samples=st.integers(min_value=20, max_value=400),
    num_agents=st.integers(min_value=2, max_value=8),
    num_classes=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=30, deadline=None)
def test_iid_partition_is_a_partition(num_samples, num_agents, num_classes, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_samples)
    shards = iid_partition(labels, num_agents, rng)
    combined = np.concatenate(shards)
    assert len(combined) == num_samples
    assert len(np.unique(combined)) == num_samples


@given(
    num_samples=st.integers(min_value=30, max_value=300),
    num_agents=st.integers(min_value=2, max_value=6),
    alpha=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=30, deadline=None)
def test_dirichlet_partition_is_a_partition(num_samples, num_agents, alpha, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 5, size=num_samples)
    shards = dirichlet_partition(labels, num_agents, rng, alpha=alpha)
    combined = np.concatenate(shards)
    assert len(combined) == num_samples
    assert len(np.unique(combined)) == num_samples
    assert all(len(shard) >= 1 for shard in shards)


# ----------------------------------------------------------------------
# AllReduce invariants
# ----------------------------------------------------------------------
@given(
    num_vectors=st.integers(min_value=1, max_value=6),
    dimension=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_allreduce_average_bounded_by_extremes(num_vectors, dimension, seed):
    rng = np.random.default_rng(seed)
    vectors = [rng.normal(size=dimension) for _ in range(num_vectors)]
    weights = rng.random(num_vectors) + 0.01
    average = allreduce_average(vectors, weights)
    stacked = np.stack(vectors)
    assert np.all(average >= stacked.min(axis=0) - 1e-9)
    assert np.all(average <= stacked.max(axis=0) + 1e-9)


@given(
    model_bytes=st.floats(min_value=1e3, max_value=1e8),
    num_agents=st.integers(min_value=2, max_value=256),
    bandwidth=st.floats(min_value=1e5, max_value=1e8),
)
@settings(max_examples=50, deadline=None)
def test_allreduce_algorithms_move_same_volume(model_bytes, num_agents, bandwidth):
    ring = ring_allreduce(model_bytes, num_agents, bandwidth)
    hd = halving_doubling_allreduce(model_bytes, num_agents, bandwidth)
    assert ring.per_agent_bytes == pytest.approx(hd.per_agent_bytes)
    assert ring.time_seconds > 0 and hd.time_seconds > 0


# ----------------------------------------------------------------------
# Compression invariants
# ----------------------------------------------------------------------
@given(
    bits=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_quantization_error_bounded(bits, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=200)
    compressor = QuantizationCompressor(bits=bits)
    reconstructed = compressor.compress(values)
    step = (values.max() - values.min()) / ((1 << bits) - 1)
    assert np.max(np.abs(reconstructed - values)) <= step / 2 + 1e-12
    assert compressor.compressed_bytes(800.0) <= 800.0


# ----------------------------------------------------------------------
# Softmax / one-hot invariants
# ----------------------------------------------------------------------
@given(
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_softmax_is_a_distribution(rows, cols, seed):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(scale=10, size=(rows, cols)))
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@given(
    count=st.integers(min_value=1, max_value=50),
    classes=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_one_hot_rows_sum_to_one(count, classes, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=count)
    encoded = one_hot(labels, classes)
    assert np.all(encoded.sum(axis=1) == 1)
    assert np.array_equal(encoded.argmax(axis=1), labels)


# ----------------------------------------------------------------------
# Privacy invariants
# ----------------------------------------------------------------------
@given(
    clip_norm=st.floats(min_value=0.1, max_value=100.0),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_dp_clipping_never_exceeds_norm(clip_norm, seed):
    rng = np.random.default_rng(seed)
    mechanism = DifferentialPrivacy(clip_norm=clip_norm, rng=rng)
    vector = rng.normal(scale=100.0, size=50)
    assert np.linalg.norm(mechanism.clip(vector)) <= clip_norm + 1e-9


@given(
    num_patches=st.integers(min_value=1, max_value=32),
    features=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_patch_shuffle_is_a_permutation(num_patches, features, seed):
    rng = np.random.default_rng(seed)
    shuffle = PatchShuffle(num_patches=num_patches, rng=np.random.default_rng(seed))
    activations = rng.normal(size=(4, features))
    out = shuffle(activations)
    assert np.allclose(np.sort(out, axis=1), np.sort(activations, axis=1))


# ----------------------------------------------------------------------
# Workload-balancing invariants
# ----------------------------------------------------------------------
AGENT_STRATEGY = st.tuples(
    st.sampled_from([4.0, 2.0, 1.0, 0.5, 0.2]),        # cpu share
    st.sampled_from([10.0, 20.0, 50.0, 100.0]),        # bandwidth
    st.integers(min_value=100, max_value=3_000),       # samples
)


@given(
    slow=AGENT_STRATEGY,
    fast=AGENT_STRATEGY,
    offload=st.sampled_from(PROFILE.offload_options),
)
@settings(max_examples=60, deadline=None)
def test_offload_estimate_invariants(slow, fast, offload):
    slow_agent = Agent(0, ResourceProfile(slow[0], slow[1]), num_samples=slow[2], batch_size=100)
    fast_agent = Agent(1, ResourceProfile(fast[0], fast[1]), num_samples=fast[2], batch_size=100)
    bandwidth = min(
        slow_agent.profile.bandwidth_bytes_per_second,
        fast_agent.profile.bandwidth_bytes_per_second,
    )
    estimate = estimate_offload_time(slow_agent, fast_agent, offload, PROFILE, bandwidth)
    assert estimate.pair_time >= estimate.slow_time - 1e-9
    assert estimate.pair_time >= 0
    assert estimate.communication_time >= 0
    assert estimate.idle_time >= 0


@given(
    population=st.lists(AGENT_STRATEGY, min_size=2, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_greedy_pairing_invariants(population):
    agents = [
        Agent(i, ResourceProfile(cpu, bw), num_samples=samples, batch_size=100)
        for i, (cpu, bw, samples) in enumerate(population)
    ]
    link_model = LinkModel(full_topology(range(len(agents))))
    decisions = greedy_pairing(agents, link_model, PROFILE)

    used = []
    for decision in decisions:
        used.append(decision.slow_id)
        if decision.fast_id is not None:
            used.append(decision.fast_id)
    # Every agent covered exactly once.
    assert sorted(used) == list(range(len(agents)))

    # The balanced makespan never exceeds the unbalanced straggler time.
    unbalanced = max(
        individual_training_time(agent, PROFILE, 100) for agent in agents
    )
    assert pairing_makespan(decisions) <= unbalanced + 1e-6


# ----------------------------------------------------------------------
# Pairing-plan invariants through the scheduler and the runtime
# ----------------------------------------------------------------------
@given(
    population=st.lists(AGENT_STRATEGY, min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=20, deadline=None)
def test_scheduler_plan_covers_participants_exactly_once(population, seed):
    """Every participant appears in exactly one PairingDecision of a plan."""
    from repro.agents.registry import AgentRegistry
    from repro.core.scheduler import DecentralizedPairingScheduler

    registry = AgentRegistry(
        [
            Agent(i, ResourceProfile(cpu, bw), num_samples=samples, batch_size=100)
            for i, (cpu, bw, samples) in enumerate(population)
        ]
    )
    scheduler = DecentralizedPairingScheduler(
        registry=registry,
        link_model=LinkModel(full_topology(registry.ids)),
        profile=PROFILE,
        rng=np.random.default_rng(seed),
    )
    decisions = scheduler.plan_round()

    used: list[int] = []
    for decision in decisions:
        used.append(decision.slow_id)
        if decision.fast_id is not None:
            used.append(decision.fast_id)
    assert sorted(used) == sorted(registry.ids)

    all_solo = max(
        individual_training_time(agent, PROFILE, agent.batch_size)
        for agent in registry.agents
    )
    assert pairing_makespan(decisions) <= all_solo + 1e-6


# ----------------------------------------------------------------------
# Quorum-policy invariants
# ----------------------------------------------------------------------
@given(
    durations=st.lists(
        st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=12
    ),
    target=st.integers(min_value=0, max_value=20),
    deadline=st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e4)),
)
@settings(max_examples=60, deadline=None)
def test_resolve_quorum_invariants(durations, target, deadline):
    """Any decision over any round keeps 1..n units and closes consistently."""
    from repro.runtime.quorum import QuorumDecision, resolve_quorum

    durations = sorted(durations)
    kept, close = resolve_quorum(
        QuorumDecision(target_count=target, deadline_seconds=deadline), durations
    )
    assert 1 <= kept <= len(durations)
    # Every kept unit finished by the closing time.
    assert durations[kept - 1] <= close + 1e-9
    # The round never waits past both the slowest unit and the deadline.
    latest = max(durations[-1], deadline) if deadline is not None else durations[-1]
    assert close <= latest + 1e-9


@given(
    fraction=st.floats(min_value=0.05, max_value=1.0),
    makespans=st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=8
    ),
    durations=st.lists(
        st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=10
    ),
)
@settings(max_examples=40, deadline=None)
def test_quorum_policies_always_yield_executable_decisions(
    fraction, makespans, durations
):
    """Every policy copes with any history — including zero makespans."""
    from repro.core.scheduler import SchedulerStats
    from repro.runtime.quorum import (
        AdaptiveQuorum,
        DeadlineQuorum,
        FixedFractionQuorum,
        resolve_quorum,
    )

    stats = SchedulerStats()
    for makespan in makespans:
        stats.record_makespan(makespan)
    durations = sorted(durations)
    policies = [
        FixedFractionQuorum(fraction),
        DeadlineQuorum(1.5, fallback=FixedFractionQuorum(fraction)),
        AdaptiveQuorum(floor_fraction=fraction),
    ]
    for policy in policies:
        decision = policy.decide(durations, stats)
        assert decision.target_count >= 1
        kept, close = resolve_quorum(decision, durations)
        assert 1 <= kept <= len(durations)
        assert close >= 0.0


# ----------------------------------------------------------------------
# Arrival/departure invariants through the dynamic runtime
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=30),
    num_arrivals=st.integers(min_value=0, max_value=2),
    depart_index=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    mode=st.sampled_from(["sync", "semi-sync", "async"]),
)
@settings(max_examples=12, deadline=None)
def test_dynamic_population_bookkeeping_invariants(
    seed, num_arrivals, depart_index, mode
):
    """Arrivals/departures keep the registry, trace and plans consistent.

    Whatever the schedule, after the run: the registry holds exactly the
    surviving ids, the trace is chronological, every round completed, and
    no departed agent completed work after its departure.
    """
    from repro.agents.agent import Agent
    from repro.agents.registry import AgentRegistry
    from repro.agents.resources import ResourceProfile
    from repro.core.comdml import ComDML
    from repro.core.config import ComDMLConfig
    from repro.runtime.dynamics import DynamicsSchedule

    base = 4
    registry = AgentRegistry.build(
        num_agents=base,
        rng=np.random.default_rng(seed),
        samples_per_agent=400,
        batch_size=100,
    )
    schedule = DynamicsSchedule()
    for index in range(num_arrivals):
        schedule.arrival(
            50.0 + 40.0 * index,
            Agent(
                agent_id=base + index,
                profile=ResourceProfile(2.0, 50.0),
                num_samples=300,
                batch_size=100,
            ),
        )
    if depart_index is not None:
        schedule.departure(120.0, agent_id=depart_index)
    comdml = ComDML(
        registry=registry,
        spec=RESNET56,
        config=ComDMLConfig(
            max_rounds=2,
            offload_granularity=9,
            execution_mode=mode,
            seed=seed,
        ),
        profile=PROFILE,
        dynamics=schedule if len(schedule) else None,
    )
    history = comdml.run()
    assert len(history) == 2

    total_time = history.total_time
    expected = set(range(base))
    for event in schedule:
        if event.kind == "arrival" and event.time <= total_time:
            expected.add(event.agent.agent_id)
        if event.kind == "departure" and event.time <= total_time:
            expected.discard(event.agent_id)
    assert set(comdml.registry.ids) == expected

    timestamps = [event.timestamp for event in comdml.trace]
    assert timestamps == sorted(timestamps)

    departures = {
        event.agent_ids[0]: event.timestamp
        for event in comdml.trace.of_kind("departure")
    }
    for event in comdml.trace.of_kind("unit_complete"):
        for agent_id in event.agent_ids:
            if agent_id in departures:
                assert event.timestamp <= departures[agent_id] + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=50),
    num_agents=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_sync_runtime_history_deterministic_under_fixed_seed(seed, num_agents):
    """Two sync-mode runs from the same seed produce identical histories."""
    from repro.core.comdml import ComDML
    from repro.core.config import ComDMLConfig
    from repro.agents.registry import AgentRegistry

    def run_once():
        registry = AgentRegistry.build(
            num_agents=num_agents,
            rng=np.random.default_rng(seed),
            samples_per_agent=400,
            batch_size=100,
        )
        comdml = ComDML(
            registry=registry,
            spec=RESNET56,
            config=ComDMLConfig(
                max_rounds=3,
                offload_granularity=9,
                participation_fraction=0.8,
                seed=seed,
            ),
            profile=PROFILE,
        )
        return comdml.run()

    assert run_once().records == run_once().records
