"""Tests for the event-driven TrainingRuntime (sync mode + traces).

The golden file ``tests/data/runtime_sync_golden.json`` was captured from
the pre-runtime per-method round loops; ``sync`` mode must reproduce those
RunHistory values bit-for-bit for ComDML and all five baselines.
"""

import json
from pathlib import Path

import pytest

from repro.baselines import AllReduceDML, FedAvg
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.models.resnet import resnet56_spec
from repro.runtime import EventTrace, TrainingRuntime, participation_fraction
from repro.runtime.strategy import solo_decisions

GOLDEN_PATH = Path(__file__).parent / "data" / "runtime_sync_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

RECORD_FIELDS = (
    "duration_seconds",
    "cumulative_seconds",
    "accuracy",
    "compute_seconds",
    "communication_seconds",
    "aggregation_seconds",
)


def golden_runner() -> ExperimentRunner:
    return ExperimentRunner(ScenarioConfig(**GOLDEN["scenario"]))


class TestSyncGoldenRegression:
    @pytest.mark.parametrize("method", sorted(GOLDEN["histories"]))
    def test_sync_reproduces_seed_history_exactly(self, method):
        history = golden_runner().run_method(method)
        rows = GOLDEN["histories"][method]
        assert len(history) == len(rows)
        for row, record in zip(rows, history.records):
            assert record.round_index == row["round_index"]
            assert record.num_pairs == row["num_pairs"]
            for field in RECORD_FIELDS:
                assert getattr(record, field) == float(row[field]), (
                    f"{method} round {row['round_index']}: {field} diverged"
                )

    def test_sync_histories_deterministic_across_runs(self):
        first = golden_runner().run_method("ComDML")
        second = golden_runner().run_method("ComDML")
        assert first.records == second.records


class TestRuntimeWiring:
    def test_comdml_exposes_runtime(self, small_registry):
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=3, offload_granularity=9),
        )
        assert isinstance(comdml.runtime, TrainingRuntime)
        history = comdml.run()
        assert comdml.history is history
        assert comdml.clock.now == pytest.approx(history.total_time)

    def test_baseline_exposes_runtime(self, small_registry):
        trainer = AllReduceDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=3, offload_granularity=9),
        )
        assert isinstance(trainer.runtime, TrainingRuntime)
        assert len(trainer.run()) == 3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ComDMLConfig(execution_mode="turbo")

    def test_mode_aliases_normalised(self):
        assert ComDMLConfig(execution_mode="semi_sync").execution_mode == "semi-sync"
        assert ComDMLConfig(execution_mode="SYNC").execution_mode == "sync"


class TestSyncTrace:
    def test_trace_covers_every_round(self, small_registry):
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=4, offload_granularity=9),
        )
        comdml.run()
        counts = comdml.trace.kind_counts()
        assert counts["round_start"] == 4
        assert counts["round_end"] == 4
        assert counts["unit_complete"] >= 4

    def test_every_agent_appears_in_trace(self, small_registry):
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=2, offload_granularity=9),
        )
        comdml.run()
        for agent_id in small_registry.ids:
            assert comdml.trace.for_agent(agent_id), f"agent {agent_id} untraced"

    def test_unit_completions_bounded_by_round_end(self, small_registry):
        trainer = FedAvg(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=1, offload_granularity=9),
        )
        trainer.run()
        round_end = trainer.trace.of_kind("round_end")[0].timestamp
        for event in trainer.trace.of_kind("unit_complete"):
            assert event.timestamp <= round_end + 1e-9

    def test_churn_recorded_in_trace(self, small_registry):
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=4,
                offload_granularity=9,
                churn_fraction=1.0,
                churn_interval_rounds=2,
            ),
        )
        comdml.run()
        churn_events = comdml.trace.of_kind("churn")
        assert churn_events and churn_events[0].round_index == 2

    def test_trace_cap_drops_not_grows(self):
        trace = EventTrace(max_events=3)
        for i in range(10):
            trace.record(float(i), 0, "unit_complete")
        assert len(trace) == 3
        assert trace.dropped_events == 7

    def test_trace_cap_wired_from_config(self, small_registry):
        comdml = ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=5, offload_granularity=9, trace_max_events=4
            ),
        )
        comdml.run()
        assert len(comdml.trace) == 4
        assert comdml.trace.dropped_events > 0

    def test_sync_trace_chronological_with_disconnected_agent(self):
        """A skipped (bandwidth-0) agent must not push trace events past round end."""
        import numpy as np

        from repro.agents.registry import AgentRegistry
        from repro.agents.resources import ResourceProfile

        registry = AgentRegistry.build(
            num_agents=3,
            rng=np.random.default_rng(0),
            samples_per_agent=500,
            batch_size=100,
            profiles=[
                ResourceProfile(0.1, 0.0),   # slow AND disconnected
                ResourceProfile(4.0, 100.0),
                ResourceProfile(2.0, 50.0),
            ],
        )
        trainer = FedAvg(
            registry=registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(max_rounds=2, offload_granularity=9),
        )
        trainer.run()
        timestamps = [event.timestamp for event in trainer.trace]
        assert timestamps == sorted(timestamps)


class TestSharedHelpers:
    def test_participation_fraction_full(self, small_registry):
        decisions = solo_decisions(small_registry.agents, _profile())
        assert participation_fraction(small_registry, decisions) == pytest.approx(1.0)

    def test_participation_fraction_partial(self, small_registry):
        decisions = solo_decisions(small_registry.agents[:3], _profile())
        fraction = participation_fraction(small_registry, decisions)
        assert 0.0 < fraction < 1.0
        expected = sum(a.num_samples for a in small_registry.agents[:3])
        assert fraction == pytest.approx(expected / small_registry.total_samples)

    def test_solo_decisions_cover_everyone_once(self, small_registry):
        decisions = solo_decisions(small_registry.agents, _profile())
        assert [d.slow_id for d in decisions] == list(small_registry.ids)
        assert all(d.fast_id is None and d.offloaded_layers == 0 for d in decisions)
        assert all(d.estimate.pair_time > 0 for d in decisions)


def _profile():
    from repro.core.profiling import profile_architecture

    return profile_architecture(resnet56_spec(), granularity=9)
