"""Tests for DynamicsSchedule: staggered arrivals, departures, in-flight churn."""

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.baselines import FedAvg
from repro.models.resnet import resnet56_spec
from repro.runtime.dynamics import DynamicsEvent, DynamicsSchedule

MODES = ("sync", "semi-sync", "async")


def fresh_registry(num_agents: int = 6, seed: int = 12345) -> AgentRegistry:
    profiles = [
        ResourceProfile(4.0, 100.0),
        ResourceProfile(2.0, 50.0),
        ResourceProfile(1.0, 50.0),
        ResourceProfile(1.0, 20.0),
        ResourceProfile(0.5, 20.0),
        ResourceProfile(0.2, 10.0),
    ][:num_agents]
    return AgentRegistry.build(
        num_agents=num_agents,
        rng=np.random.default_rng(seed),
        samples_per_agent=600,
        batch_size=100,
        profiles=profiles,
    )


def make_comdml(registry, dynamics=None, **config_kwargs):
    defaults = dict(max_rounds=3, offload_granularity=9, seed=3)
    defaults.update(config_kwargs)
    return ComDML(
        registry=registry,
        spec=resnet56_spec(),
        config=ComDMLConfig(**defaults),
        dynamics=dynamics,
    )


def new_agent(agent_id: int, cpu: float = 4.0, bandwidth: float = 100.0) -> Agent:
    return Agent(
        agent_id=agent_id,
        profile=ResourceProfile(cpu, bandwidth),
        num_samples=500,
        batch_size=100,
    )


def first_unit_completion(mode: str = "sync") -> float:
    """Earliest unit completion of round 0 in a dynamics-free run."""
    trainer = make_comdml(fresh_registry(), execution_mode=mode, max_rounds=1)
    trainer.run()
    return min(e.timestamp for e in trainer.trace.of_kind("unit_complete"))


class TestScheduleConstruction:
    def test_events_sorted_by_time(self):
        schedule = DynamicsSchedule()
        schedule.departure(30.0, agent_id=1)
        schedule.churn(10.0, fraction=0.5)
        assert [event.time for event in schedule] == [10.0, 30.0]

    def test_arrival_wave_staggers(self):
        schedule = DynamicsSchedule()
        agents = [new_agent(10 + i) for i in range(3)]
        schedule.arrival_wave(start=100.0, interval=50.0, agents=agents)
        assert [event.time for event in schedule] == [100.0, 150.0, 200.0]
        assert all(event.kind == "arrival" for event in schedule)

    def test_churn_requires_exactly_one_target_spec(self):
        with pytest.raises(ValueError):
            DynamicsEvent(time=1.0, kind="churn")
        with pytest.raises(ValueError):
            DynamicsEvent(time=1.0, kind="churn", fraction=0.5, agent_ids=(1,))

    def test_arrival_requires_agent(self):
        with pytest.raises(ValueError):
            DynamicsEvent(time=1.0, kind="arrival")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DynamicsEvent(time=1.0, kind="earthquake")

    def test_schedule_cannot_be_registered_twice(self):
        """Reusing a schedule across runs would leak mutated Agent state."""
        schedule = DynamicsSchedule()
        schedule.arrival(10.0, new_agent(6))
        make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)
        with pytest.raises(RuntimeError, match="fresh schedule"):
            make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)


class TestEmptyScheduleEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_empty_schedule_is_identical_to_none(self, mode):
        """An empty DynamicsSchedule must change nothing, in any mode."""
        baseline = make_comdml(fresh_registry(), execution_mode=mode).run()
        with_empty = make_comdml(
            fresh_registry(), dynamics=DynamicsSchedule(), execution_mode=mode
        ).run()
        assert baseline.records == with_empty.records


class TestArrivals:
    def test_arrival_at_time_zero_joins_first_plan(self):
        schedule = DynamicsSchedule()
        schedule.arrival(0.0, new_agent(6))
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)
        trainer.run()
        assert 6 in trainer.registry
        arrivals = trainer.trace.of_kind("arrival")
        assert arrivals and arrivals[0].agent_ids == (6,)
        # The newcomer took part in round 0's work.
        assert any(
            6 in e.agent_ids for e in trainer.trace.of_kind("unit_complete")
        )

    def test_mid_round_arrival_waits_for_next_plan(self):
        cutoff = first_unit_completion()
        schedule = DynamicsSchedule()
        schedule.arrival(0.5 * cutoff, new_agent(6))
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=2)
        trainer.run()
        round0_units = [
            e
            for e in trainer.trace.of_kind("unit_complete")
            if e.round_index == 0
        ]
        later_units = [
            e
            for e in trainer.trace.of_kind("unit_complete")
            if e.round_index == 1
        ]
        assert all(6 not in e.agent_ids for e in round0_units)
        assert any(6 in e.agent_ids for e in later_units)

    def test_duplicate_arrival_ignored(self):
        schedule = DynamicsSchedule()
        schedule.arrival(0.0, new_agent(0))  # id 0 already exists
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)
        trainer.run()
        assert not trainer.trace.of_kind("arrival")
        assert len(trainer.registry) == 6


class TestDepartures:
    @pytest.mark.parametrize("mode", MODES)
    def test_mid_round_departure_survived_by_every_mode(self, mode):
        cutoff = first_unit_completion()
        schedule = DynamicsSchedule()
        schedule.departure(0.25 * cutoff, agent_id=5)
        trainer = make_comdml(
            fresh_registry(), dynamics=schedule, execution_mode=mode, max_rounds=3
        )
        history = trainer.run()
        assert len(history) == 3
        assert 5 not in trainer.registry
        departures = trainer.trace.of_kind("departure")
        assert departures and departures[0].agent_ids == (5,)
        # The departed agent's in-flight unit was abandoned, and it never
        # works again after the departure time.
        abandoned = trainer.trace.of_kind("unit_abandoned")
        assert any(5 in e.agent_ids for e in abandoned)
        after = [
            e
            for e in trainer.trace.of_kind("unit_complete")
            if 5 in e.agent_ids and e.timestamp > departures[0].timestamp
        ]
        assert not after

    def test_departure_of_unknown_agent_is_noop(self):
        schedule = DynamicsSchedule()
        schedule.departure(1.0, agent_id=99)
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)
        trainer.run()
        assert not trainer.trace.of_kind("departure")


class TestMidRoundChurn:
    @pytest.mark.parametrize("mode", MODES)
    def test_in_flight_units_are_repriced(self, mode):
        cutoff = first_unit_completion()
        schedule = DynamicsSchedule()
        schedule.churn(0.5 * cutoff, agent_ids=range(6))
        trainer = make_comdml(
            fresh_registry(), dynamics=schedule, execution_mode=mode, max_rounds=2
        )
        trainer.run()
        churn_events = [
            e
            for e in trainer.trace.of_kind("churn")
            if e.detail and e.detail.get("source") == "schedule"
        ]
        assert churn_events
        repriced = trainer.trace.of_kind("unit_repriced")
        assert repriced, f"churn landed but nothing was re-costed in mode {mode}"
        for event in repriced:
            assert event.detail["new_completion"] >= event.timestamp - 1e-9

    def test_repricing_moves_completions(self):
        """With every CPU churned, at least one completion time must move."""
        cutoff = first_unit_completion()
        schedule = DynamicsSchedule()
        schedule.churn(0.5 * cutoff, agent_ids=range(6))
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=1)
        trainer.run()
        repriced = trainer.trace.of_kind("unit_repriced")
        assert any(
            abs(e.detail["new_completion"] - e.detail["old_completion"]) > 1e-6
            for e in repriced
        )

    def test_churn_in_aggregation_window_keeps_trace_chronological(self):
        """Churn landing after the barrier but before round end re-costs
        nothing (no unit is in flight) and must not scramble the trace."""
        probe = make_comdml(fresh_registry(), max_rounds=1)
        probe.run()
        last_unit = max(e.timestamp for e in probe.trace.of_kind("unit_complete"))
        round_end = probe.trace.of_kind("round_end")[0].timestamp
        assert round_end > last_unit  # the aggregation window exists
        schedule = DynamicsSchedule()
        schedule.churn(0.5 * (last_unit + round_end), fraction=0.5)
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=2)
        trainer.run()
        timestamps = [event.timestamp for event in trainer.trace]
        assert timestamps == sorted(timestamps)
        assert not trainer.trace.of_kind("unit_repriced")

    def test_fraction_churn_between_rounds_only_touches_registry(self):
        """Churn dated after round 0's end re-costs nothing in flight."""
        trainer_probe = make_comdml(fresh_registry(), max_rounds=1)
        round_end = trainer_probe.run().records[0].cumulative_seconds
        schedule = DynamicsSchedule()
        schedule.churn(round_end, fraction=0.5)
        trainer = make_comdml(fresh_registry(), dynamics=schedule, max_rounds=2)
        trainer.run()
        churned = [
            e
            for e in trainer.trace.of_kind("churn")
            if e.detail and e.detail.get("source") == "schedule"
        ]
        assert churned
        # Round 1's plan was built after the churn fired, so nothing was in
        # flight: no unit may have been re-costed.
        assert not trainer.trace.of_kind("unit_repriced")


class TestDynamicRunsStayCoherent:
    def full_schedule(self, cutoff: float) -> DynamicsSchedule:
        schedule = DynamicsSchedule()
        schedule.churn(0.5 * cutoff, agent_ids=range(6))
        schedule.arrival_wave(
            start=1.5 * cutoff, interval=cutoff, agents=[new_agent(6), new_agent(7)]
        )
        schedule.departure(2.5 * cutoff, agent_id=4)
        return schedule

    @pytest.mark.parametrize("mode", MODES)
    def test_trace_chronological_and_rounds_complete(self, mode):
        cutoff = first_unit_completion()
        trainer = make_comdml(
            fresh_registry(),
            dynamics=self.full_schedule(cutoff),
            execution_mode=mode,
            max_rounds=4,
        )
        history = trainer.run()
        assert len(history) == 4
        timestamps = [event.timestamp for event in trainer.trace]
        assert timestamps == sorted(timestamps)
        times = history.times()
        assert all(a < b for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("mode", MODES)
    def test_deterministic_under_fixed_seed(self, mode):
        cutoff = first_unit_completion()

        def run_once():
            trainer = make_comdml(
                fresh_registry(),
                dynamics=self.full_schedule(cutoff),
                execution_mode=mode,
                max_rounds=3,
            )
            return trainer.run()

        assert run_once().records == run_once().records

    @pytest.mark.parametrize("mode", MODES)
    def test_inert_schedule_matches_no_schedule_for_fedavg(self, mode):
        """A schedule whose only event never fires must not change records.

        Guards the dynamic paths' pricing against divergence from the
        closed-form paths — e.g. FedAvg bills communication inside its unit
        chains and must not be charged round-level aggregation again.
        """

        def run(dynamics):
            trainer = FedAvg(
                registry=fresh_registry(),
                spec=resnet56_spec(),
                config=ComDMLConfig(
                    max_rounds=2, offload_granularity=9, execution_mode=mode
                ),
                dynamics=dynamics,
            )
            return trainer.run()

        inert = DynamicsSchedule()
        inert.departure(1e12, agent_id=0)  # far beyond the run's horizon
        baseline = run(None)
        dynamic = run(inert)
        for base, dyn in zip(baseline.records, dynamic.records):
            assert dyn.duration_seconds == pytest.approx(base.duration_seconds)
            assert dyn.accuracy == pytest.approx(base.accuracy)

    def test_semi_sync_records_untruncated_makespans(self):
        """Quorum statistics must see what the round *would* have taken.

        Recording the truncated close offset would let a deadline policy
        ratchet its own deadline down on its own drops.
        """
        trainer = make_comdml(
            fresh_registry(),
            dynamics=DynamicsSchedule([DynamicsEvent(1e12, "departure", agent_id=0)]),
            execution_mode="semi-sync",
            quorum_fraction=0.5,
            max_rounds=1,
        )
        record = trainer.run().records[0]
        observed = trainer.runtime.stats.average_makespan
        # The quorum closed the round early, but the recorded makespan is
        # the slowest unit's projected completion — strictly beyond it.
        assert record.compute_seconds < observed
        dropped = trainer.trace.of_kind("straggler_dropped")
        assert observed == pytest.approx(
            max(e.detail["projected_completion"] for e in dropped)
        )

    def test_baseline_trainer_supports_dynamics(self):
        """FedAvg's chain-priced units re-cost and survive departures too."""
        cutoff = first_unit_completion()
        registry = fresh_registry()
        trainer = FedAvg(
            registry=registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=3, offload_granularity=9, execution_mode="semi-sync"
            ),
            dynamics=self.full_schedule(cutoff),
        )
        history = trainer.run()
        assert len(history) == 3
        assert trainer.trace.of_kind("arrival")
        assert trainer.trace.of_kind("departure")
