"""Tests for the semi-sync and async runtime execution modes."""

import pytest

from repro.baselines import AllReduceDML, FedAvg
from repro.cli import main
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.models.resnet import resnet56_spec


def make_comdml(registry, **config_kwargs):
    defaults = dict(max_rounds=5, offload_granularity=9, seed=3)
    defaults.update(config_kwargs)
    return ComDML(
        registry=registry,
        spec=resnet56_spec(),
        config=ComDMLConfig(**defaults),
    )


class TestSemiSync:
    def test_round_never_slower_than_sync(self, small_registry, rng):
        from repro.agents.registry import AgentRegistry

        def fresh():
            import numpy as np

            return AgentRegistry.build(
                num_agents=6,
                rng=np.random.default_rng(12345),
                samples_per_agent=600,
                batch_size=100,
            )

        sync = make_comdml(fresh(), execution_mode="sync").run_round(0)
        semi = make_comdml(
            fresh(), execution_mode="semi-sync", quorum_fraction=0.5
        ).run_round(0)
        assert semi.compute_seconds <= sync.compute_seconds + 1e-9

    def test_stragglers_dropped_and_traced(self, small_registry):
        comdml = make_comdml(
            small_registry, execution_mode="semi-sync", quorum_fraction=0.5, max_rounds=2
        )
        comdml.run()
        dropped = comdml.trace.of_kind("straggler_dropped")
        quorums = comdml.trace.of_kind("quorum_reached")
        assert quorums and all(e.detail["kept"] >= 1 for e in quorums)
        # With quorum 0.5 over >=2 units, at least one straggler per round
        # whenever a round forms more than one unit.
        if any(e.detail["dropped"] > 0 for e in quorums):
            assert dropped
        for event in dropped:
            assert event.agent_ids
            assert event.detail["projected_completion"] >= event.timestamp

    def test_dropped_stragglers_shrink_participation(self, small_registry):
        trainer = AllReduceDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=1,
                offload_granularity=9,
                execution_mode="semi-sync",
                quorum_fraction=0.5,
            ),
        )
        record = trainer.run_round(0)
        quorum = trainer.trace.of_kind("quorum_reached")[0]
        assert quorum.detail["kept"] == 3
        assert quorum.detail["dropped"] == 3
        assert record.num_pairs == 0

    def test_fedavg_full_quorum_not_slower_than_sync(self):
        """FedAvg's chain-priced units must not double-count communication."""
        import numpy as np

        from repro.agents.registry import AgentRegistry

        def total(mode):
            registry = AgentRegistry.build(
                num_agents=6,
                rng=np.random.default_rng(1),
                samples_per_agent=500,
                batch_size=100,
            )
            trainer = FedAvg(
                registry=registry,
                spec=resnet56_spec(),
                config=ComDMLConfig(
                    max_rounds=2,
                    offload_granularity=9,
                    execution_mode=mode,
                    quorum_fraction=1.0,
                ),
            )
            return trainer.run().total_time

        sync_total = total("sync")
        assert total("semi-sync") <= sync_total + 1e-9
        assert total("async") <= sync_total + 1e-9

    def test_quorum_one_keeps_everything(self, small_registry):
        comdml = make_comdml(
            small_registry, execution_mode="semi-sync", quorum_fraction=1.0, max_rounds=1
        )
        comdml.run()
        assert not comdml.trace.of_kind("straggler_dropped")

    def test_deterministic_under_fixed_seed(self, rng):
        import numpy as np

        from repro.agents.registry import AgentRegistry

        def run_once():
            registry = AgentRegistry.build(
                num_agents=6,
                rng=np.random.default_rng(7),
                samples_per_agent=500,
                batch_size=100,
            )
            comdml = make_comdml(
                registry,
                execution_mode="semi-sync",
                quorum_fraction=0.6,
                churn_fraction=0.5,
                churn_interval_rounds=2,
                max_rounds=4,
            )
            return comdml.run()

        assert run_once().records == run_once().records


class TestSemiSyncEdgeCases:
    def test_trace_stays_chronological(self, small_registry):
        comdml = make_comdml(
            small_registry, execution_mode="semi-sync", quorum_fraction=0.5, max_rounds=3
        )
        comdml.run()
        timestamps = [event.timestamp for event in comdml.trace]
        assert timestamps == sorted(timestamps)

    def test_disconnected_agents_do_not_fill_quorum(self):
        """Idle (bandwidth-0) FedAvg agents must not crowd out training agents."""
        import numpy as np

        from repro.agents.registry import AgentRegistry
        from repro.agents.resources import ResourceProfile

        profiles = [
            ResourceProfile(4.0, 0.0),   # disconnected: server skips it
            ResourceProfile(4.0, 0.0),   # disconnected: server skips it
            ResourceProfile(2.0, 50.0),
            ResourceProfile(1.0, 50.0),
        ]
        registry = AgentRegistry.build(
            num_agents=4,
            rng=np.random.default_rng(0),
            samples_per_agent=500,
            batch_size=100,
            profiles=profiles,
        )
        trainer = FedAvg(
            registry=registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=1,
                offload_granularity=9,
                execution_mode="semi-sync",
                quorum_fraction=0.5,
            ),
        )
        trainer.run()
        # The fast disconnected agents still rank by their training time, so
        # the quorum is not trivially two zero-duration idle units.
        for event in trainer.trace.of_kind("unit_complete"):
            assert event.detail["duration"] > 0


class TestAsync:
    def test_per_unit_aggregation_events(self, small_registry):
        comdml = make_comdml(small_registry, execution_mode="async", max_rounds=1)
        comdml.run()
        units = comdml.trace.of_kind("unit_complete")
        aggregations = comdml.trace.of_kind("aggregation")
        assert len(aggregations) == len(units) >= 1
        # Gossip aggregation fires at or after its unit's completion.
        for unit, agg in zip(units, aggregations):
            assert agg.timestamp >= unit.timestamp

    def test_accuracy_advances_per_unit(self, small_registry):
        comdml = make_comdml(small_registry, execution_mode="async", max_rounds=1)
        comdml.run()
        accuracies = [
            e.detail["accuracy"] for e in comdml.trace.of_kind("aggregation")
        ]
        assert accuracies == sorted(accuracies)
        assert comdml.history.final_accuracy == pytest.approx(accuracies[-1])

    def test_round_end_after_last_aggregation(self, small_registry):
        trainer = FedAvg(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(
                max_rounds=1, offload_granularity=9, execution_mode="async"
            ),
        )
        trainer.run()
        round_end = trainer.trace.of_kind("round_end")[0].timestamp
        for event in trainer.trace.of_kind("aggregation"):
            assert event.timestamp <= round_end + 1e-9

    def test_deterministic_under_fixed_seed(self):
        import numpy as np

        from repro.agents.registry import AgentRegistry

        def run_once():
            registry = AgentRegistry.build(
                num_agents=5,
                rng=np.random.default_rng(11),
                samples_per_agent=400,
                batch_size=100,
            )
            return make_comdml(
                registry, execution_mode="async", max_rounds=3
            ).run()

        assert run_once().records == run_once().records

    def test_history_still_monotone(self, small_registry):
        comdml = make_comdml(small_registry, execution_mode="async", max_rounds=4)
        history = comdml.run()
        times = history.times()
        assert all(a < b for a, b in zip(times, times[1:]))


class TestModesEndToEnd:
    @pytest.mark.parametrize("mode", ["semi-sync", "async"])
    def test_experiment_runner_supports_mode(self, mode):
        config = ScenarioConfig(
            num_agents=5,
            max_rounds=4,
            offload_granularity=9,
            execution_mode=mode,
            quorum_fraction=0.6,
            seed=5,
        )
        history, trace = ExperimentRunner(config).run_method_with_trace("ComDML")
        assert len(history) == 4
        assert trace.kind_counts()["round_end"] == 4

    @pytest.mark.parametrize("mode", ["semi-sync", "async"])
    def test_cli_runs_mode(self, mode, capsys):
        exit_code = main(
            [
                "compare",
                "--agents",
                "4",
                "--target",
                "0",
                "--max-rounds",
                "3",
                "--mode",
                mode,
                "--quorum",
                "0.6",
                "--methods",
                "ComDML",
                "AllReduce",
                "--granularity",
                "9",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ComDML" in captured and "AllReduce" in captured
