"""Tests for the pluggable semi-sync quorum policies."""

import pytest

from repro.core.config import ComDMLConfig
from repro.core.scheduler import SchedulerStats
from repro.runtime.quorum import (
    AdaptiveQuorum,
    DeadlineQuorum,
    FixedFractionQuorum,
    QuorumDecision,
    make_quorum_policy,
    resolve_quorum,
)

DURATIONS = [10.0, 20.0, 30.0, 40.0]


def stats_with(*makespans: float) -> SchedulerStats:
    stats = SchedulerStats()
    for makespan in makespans:
        stats.record_makespan(makespan)
    return stats


class TestFixedFraction:
    def test_half_keeps_half(self):
        decision = FixedFractionQuorum(0.5).decide(DURATIONS, SchedulerStats())
        assert decision.target_count == 2
        assert decision.deadline_seconds is None
        assert resolve_quorum(decision, DURATIONS) == (2, 20.0)

    def test_always_keeps_at_least_one(self):
        decision = FixedFractionQuorum(0.1).decide([5.0], SchedulerStats())
        assert decision.target_count == 1

    def test_rejects_zero_fraction(self):
        with pytest.raises(ValueError):
            FixedFractionQuorum(0.0)


class TestDeadline:
    def test_falls_back_with_no_history(self):
        """Round 0 has no observed makespans — use the fixed fallback."""
        policy = DeadlineQuorum(1.5, fallback=FixedFractionQuorum(0.75))
        decision = policy.decide(DURATIONS, SchedulerStats())
        assert decision.deadline_seconds is None
        assert decision.target_count == 3

    def test_falls_back_with_zero_makespans(self):
        """Degenerate all-zero history must not produce a zero deadline."""
        policy = DeadlineQuorum(1.5, fallback=FixedFractionQuorum(0.5))
        decision = policy.decide(DURATIONS, stats_with(0.0, 0.0))
        assert decision.deadline_seconds is None
        assert decision.target_count == 2

    def test_deadline_is_factor_times_mean(self):
        policy = DeadlineQuorum(1.5)
        decision = policy.decide(DURATIONS, stats_with(10.0, 30.0))
        assert decision.deadline_seconds == pytest.approx(30.0)
        assert decision.target_count == len(DURATIONS)

    def test_resolve_closes_at_deadline(self):
        decision = QuorumDecision(target_count=4, deadline_seconds=25.0)
        kept, close = resolve_quorum(decision, DURATIONS)
        assert kept == 2
        assert close == pytest.approx(25.0)

    def test_all_stragglers_round_keeps_the_fastest(self):
        """If even the fastest unit misses the deadline, keep it anyway."""
        decision = QuorumDecision(target_count=4, deadline_seconds=5.0)
        kept, close = resolve_quorum(decision, DURATIONS)
        assert kept == 1
        assert close == pytest.approx(10.0)

    def test_everyone_on_time_closes_at_last_completion(self):
        decision = QuorumDecision(target_count=4, deadline_seconds=100.0)
        kept, close = resolve_quorum(decision, DURATIONS)
        assert kept == 4
        assert close == pytest.approx(40.0)


class TestAdaptive:
    def test_full_barrier_without_history(self):
        policy = AdaptiveQuorum(floor_fraction=0.5)
        decision = policy.decide(DURATIONS, SchedulerStats())
        assert decision.target_count == len(DURATIONS)

    def test_tightens_to_floor_when_makespans_stable(self):
        policy = AdaptiveQuorum(floor_fraction=0.5)
        stable = stats_with(20.0, 20.0, 20.0, 20.0)
        assert stable.makespan_cv == pytest.approx(0.0)
        decision = policy.decide(DURATIONS, stable)
        assert decision.target_count == 2

    def test_stays_loose_when_makespans_noisy(self):
        policy = AdaptiveQuorum(floor_fraction=0.5, stability_cv=0.5)
        noisy = stats_with(1.0, 100.0, 1.0, 100.0)
        assert noisy.makespan_cv >= 0.5
        decision = policy.decide(DURATIONS, noisy)
        assert decision.target_count == len(DURATIONS)

    def test_zero_mean_history_counts_as_stable(self):
        """All-zero makespans give cv = 0 — the policy tightens to the floor."""
        policy = AdaptiveQuorum(floor_fraction=0.5)
        decision = policy.decide(DURATIONS, stats_with(0.0, 0.0, 0.0))
        assert decision.target_count == 2

    def test_fraction_interpolates_between_floor_and_start(self):
        policy = AdaptiveQuorum(floor_fraction=0.4, start_fraction=1.0)
        mildly_noisy = stats_with(10.0, 14.0, 10.0, 14.0)
        fraction = policy.current_fraction(mildly_noisy)
        assert 0.4 < fraction < 1.0

    def test_rejects_start_below_floor(self):
        with pytest.raises(ValueError):
            AdaptiveQuorum(floor_fraction=0.8, start_fraction=0.5)


class TestResolveEdges:
    def test_empty_round(self):
        assert resolve_quorum(QuorumDecision(3), []) == (0, 0.0)

    def test_target_clamped_to_population(self):
        kept, close = resolve_quorum(QuorumDecision(99), DURATIONS)
        assert kept == 4
        assert close == pytest.approx(40.0)

    def test_target_clamped_to_at_least_one(self):
        kept, close = resolve_quorum(QuorumDecision(0), DURATIONS)
        assert kept == 1
        assert close == pytest.approx(10.0)


class TestConfigWiring:
    def test_make_policy_dispatch(self):
        assert isinstance(
            make_quorum_policy(ComDMLConfig(quorum_policy="fixed")),
            FixedFractionQuorum,
        )
        assert isinstance(
            make_quorum_policy(ComDMLConfig(quorum_policy="deadline")),
            DeadlineQuorum,
        )
        assert isinstance(
            make_quorum_policy(ComDMLConfig(quorum_policy="adaptive")),
            AdaptiveQuorum,
        )

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ComDMLConfig(quorum_policy="vibes")

    def test_config_rejects_nonpositive_deadline_factor(self):
        with pytest.raises(ValueError):
            ComDMLConfig(quorum_deadline_factor=0.0)

    def test_adaptive_floor_comes_from_quorum_fraction(self):
        policy = make_quorum_policy(
            ComDMLConfig(quorum_policy="adaptive", quorum_fraction=0.4)
        )
        assert policy.floor_fraction == pytest.approx(0.4)


class TestPoliciesEndToEnd:
    def make_trainer(self, small_registry, **config_kwargs):
        from repro.core.comdml import ComDML
        from repro.models.resnet import resnet56_spec

        defaults = dict(
            max_rounds=3,
            offload_granularity=9,
            execution_mode="semi-sync",
            seed=3,
        )
        defaults.update(config_kwargs)
        return ComDML(
            registry=small_registry,
            spec=resnet56_spec(),
            config=ComDMLConfig(**defaults),
        )

    def test_deadline_policy_round_zero_falls_back(self, small_registry):
        trainer = self.make_trainer(
            small_registry, quorum_policy="deadline", quorum_fraction=0.5
        )
        trainer.run_round(0)
        quorum = trainer.trace.of_kind("quorum_reached")[0]
        assert quorum.detail["policy"] == "deadline"
        # No makespan history yet: the fixed 0.5 fallback decided the round.
        assert quorum.detail["kept"] >= 1

    def test_tiny_deadline_forces_all_stragglers_round(self, small_registry):
        """A deadline below every unit duration keeps exactly one unit."""
        trainer = self.make_trainer(
            small_registry,
            quorum_policy="deadline",
            quorum_deadline_factor=0.01,
            quorum_fraction=1.0,
        )
        trainer.run_round(0)  # fallback round records a makespan
        trainer.run_round(1)  # deadline = 0.01 × mean << fastest unit
        quorum = trainer.trace.of_kind("quorum_reached")[1]
        assert quorum.detail["kept"] == 1

    def test_adaptive_policy_tightens_over_stable_rounds(self, small_registry):
        trainer = self.make_trainer(
            small_registry, quorum_policy="adaptive", quorum_fraction=0.5, max_rounds=5
        )
        trainer.run()
        quorums = trainer.trace.of_kind("quorum_reached")
        # Rounds 0/1 have < 2 observed makespans: full barrier, nothing kept back.
        assert quorums[0].detail["dropped"] == 0
        assert quorums[1].detail["dropped"] == 0
        # Identical plans give identical makespans, so cv -> 0 and the
        # policy reaches its floor: later rounds drop stragglers.
        assert any(q.detail["dropped"] > 0 for q in quorums[2:])

    def test_runtime_records_observed_makespans(self, small_registry):
        trainer = self.make_trainer(small_registry, quorum_policy="fixed")
        trainer.run()
        assert trainer.runtime.stats.makespan_count == 3
        assert trainer.runtime.stats.average_makespan > 0
