"""Tests for the sharded planning runtime (`repro.core.shard`).

Three contracts are enforced.  First, *shard-count invariance*: plans
produced with 1, 2, or 4 shards are byte-identical to the single-process
pruned planner, with consistent ``PlannerStats`` accounting, on full
rebuilds and on incremental replans after churn.  Second, *shared-memory
hygiene*: every segment is unlinked when the planner closes and when a
worker crashes mid-run — no stale ``/dev/shm`` entries survive.  Third,
*graceful degradation*: complete graphs, custom link models, small
populations, and dead pools all fall back to the inherited in-process
path with unchanged decisions.
"""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.planner import PrunedPlanner, build_planner
from repro.core.profiling import profile_architecture
from repro.core.shard import (
    DEFAULT_SHARD_MIN_POPULATION,
    MAX_AUTO_SHARDS,
    ShardedPlanner,
    resolve_shard_count,
    stale_segment_names,
)
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import (
    full_topology,
    random_k_topology,
    ring_topology,
)

PROFILE = profile_architecture(resnet56_spec(), granularity=9)

AGENT_STRATEGY = st.tuples(
    st.sampled_from([4.0, 2.0, 1.0, 0.5, 0.2, 0.7]),          # cpu share
    st.sampled_from([0.0, 10.0, 20.0, 50.0, 100.0]),          # bandwidth (0 = offline)
    st.integers(min_value=0, max_value=3_000),                # samples
    st.sampled_from([50, 100, 128]),                          # batch size
)


def _build_agents(population) -> list[Agent]:
    return [
        Agent(
            agent_id=index,
            profile=ResourceProfile(cpu, bandwidth),
            num_samples=samples,
            batch_size=batch,
        )
        for index, (cpu, bandwidth, samples, batch) in enumerate(population)
    ]


def _link_model(agents, topology_kind: str, seed: int = 0) -> LinkModel:
    ids = [agent.agent_id for agent in agents]
    if topology_kind == "ring":
        return LinkModel(ring_topology(ids))
    if topology_kind == "random-k":
        return LinkModel(random_k_topology(ids, 3, np.random.default_rng(seed)))
    return LinkModel(full_topology(ids))


def _sharded(agents, link_model, shards, **kwargs) -> ShardedPlanner:
    """A sharded planner with a full candidate budget that always engages."""
    return ShardedPlanner(
        PROFILE,
        link_model,
        top_k=max(len(agents) - 1, 1),
        shards=shards,
        shard_min_population=0,
        **kwargs,
    )


def _reference(agents, link_model, **kwargs) -> PrunedPlanner:
    return PrunedPlanner(
        PROFILE, link_model, top_k=max(len(agents) - 1, 1), **kwargs
    )


class _FixedLatencyLinkModel(LinkModel):
    """A custom link model the workers cannot evaluate from τ̂ vectors."""

    def bandwidth(self, slow, fast):  # pragma: no cover - trivial override
        return 0.9 * super().bandwidth(slow, fast)


# ----------------------------------------------------------------------
# Shard-count invariance: 1/2/4 shards ≡ single-process pruned planner
# ----------------------------------------------------------------------
class TestShardInvariance:
    @given(
        population=st.lists(AGENT_STRATEGY, min_size=4, max_size=12),
        topology_kind=st.sampled_from(["ring", "random-k"]),
        shards=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=12, deadline=None)
    def test_shard_count_never_changes_decisions(
        self, population, topology_kind, shards, seed
    ):
        agents = _build_agents(population)
        link_model = _link_model(agents, topology_kind, seed)
        reference = _reference(agents, link_model)
        expected, expected_taus = reference.plan(agents)
        planner = _sharded(agents, link_model, shards)
        try:
            actual, actual_taus = planner.plan(agents)
            assert actual == expected
            assert actual_taus == expected_taus
            assert (
                planner.stats.last_pairs_evaluated
                == reference.stats.last_pairs_evaluated
            )
            assert planner.stats.pairs_evaluated == reference.stats.pairs_evaluated
            n = len(agents)
            complete = link_model.topology.num_edges == n * (n - 1) // 2
            if shards >= 2 and n >= 2 and not complete:
                assert planner.shard_stats.sharded_rounds >= 1
            elif shards < 2 or complete:
                # Complete graphs keep the O(n·k) global-pool shortcut
                # in-process by design; a pool of one never engages.
                assert planner.shard_stats.sharded_rounds == 0
        finally:
            planner.close()

    def test_incremental_replan_matches_after_churn(self):
        agents = _build_agents(
            [(4.0, 100.0, 1_000, 100), (2.0, 50.0, 800, 100)] * 4
        )
        link_model = _link_model(agents, "random-k", seed=7)
        planner = _sharded(agents, link_model, shards=2)
        reference = _reference(agents, link_model)
        try:
            planner.plan(agents)
            reference.plan(agents)
            agents[3].profile = ResourceProfile(0.2, 10.0)
            planner.invalidate([agents[3].agent_id])
            reference.invalidate([agents[3].agent_id])
            actual, _ = planner.plan(agents)
            expected, _ = reference.plan(agents)
            assert actual == expected
            assert (
                planner.stats.last_rows_recomputed
                == reference.stats.last_rows_recomputed
            )
            assert planner.shard_stats.sharded_rounds == 2
        finally:
            planner.close()

    def test_parallel_csr_build_matches_serial(self):
        agents = _build_agents(
            [(1.0, 50.0, 500, 100), (2.0, 20.0, 700, 100)] * 5
        )
        link_model = _link_model(agents, "random-k", seed=3)
        planner = _sharded(agents, link_model, shards=2)
        reference = _reference(agents, link_model)
        try:
            planner.plan(agents)
            reference.plan(agents)
            assert planner.shard_stats.parallel_csr_builds >= 1
            ids = tuple(agent.agent_id for agent in agents)
            mine = planner._csr.links_for(planner._csr.translation(ids))
            theirs = reference._csr.links_for(reference._csr.translation(ids))
            np.testing.assert_array_equal(mine[0], theirs[0])
            np.testing.assert_array_equal(mine[1], theirs[1])
        finally:
            planner.close()


# ----------------------------------------------------------------------
# Shared-memory lifecycle: nothing survives close() or a worker crash
# ----------------------------------------------------------------------
class TestSharedMemoryLifecycle:
    def test_close_unlinks_every_segment(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 8)
        link_model = _link_model(agents, "ring")
        planner = _sharded(agents, link_model, shards=2)
        planner.plan(agents)
        names = planner.segment_names()
        assert names, "pooled plan should have published shm segments"
        planner.close()
        assert planner.segment_names() == []
        assert stale_segment_names() == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 6)
        planner = _sharded(agents, _link_model(agents, "ring"), shards=2)
        planner.plan(agents)
        planner.close()
        planner.close()
        assert stale_segment_names() == []

    def test_context_manager_closes(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 6)
        with _sharded(agents, _link_model(agents, "ring"), shards=2) as planner:
            planner.plan(agents)
            assert planner.segment_names()
        assert stale_segment_names() == []

    def test_garbage_collection_reclaims_segments(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 6)
        planner = _sharded(agents, _link_model(agents, "ring"), shards=2)
        planner.plan(agents)
        del planner
        gc.collect()
        assert stale_segment_names() == []

    def test_worker_crash_falls_back_with_identical_plan(self):
        agents = _build_agents(
            [(4.0, 100.0, 1_000, 100), (0.5, 20.0, 900, 100)] * 4
        )
        link_model = _link_model(agents, "ring")
        planner = _sharded(agents, link_model, shards=2)
        reference = _reference(agents, link_model)
        try:
            planner.plan(agents)
            reference.plan(agents)
            planner._runtime.workers[0].process.kill()
            planner._runtime.workers[0].process.join(timeout=5)
            agents[0].profile = ResourceProfile(0.2, 10.0)
            planner.invalidate([agents[0].agent_id])
            reference.invalidate([agents[0].agent_id])
            with pytest.warns(RuntimeWarning, match="fell back"):
                actual, _ = planner.plan(agents)
            expected, _ = reference.plan(agents)
            assert actual == expected
            assert planner.shard_stats.worker_failures == 1
            assert planner._pool_failed
            assert planner.segment_names() == []
            assert stale_segment_names() == []
            # The fallback is permanent and silent from here on.
            actual, _ = planner.plan(agents)
            assert actual == expected
            assert planner.shard_stats.worker_failures == 1
        finally:
            planner.close()


# ----------------------------------------------------------------------
# Fallbacks: cases the pool must leave to the inherited exact paths
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_complete_graph_keeps_global_pool_shortcut(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 8)
        link_model = _link_model(agents, "full")
        planner = _sharded(agents, link_model, shards=2)
        try:
            actual, _ = planner.plan(agents)
            expected, _ = _reference(agents, link_model).plan(agents)
            assert actual == expected
            assert planner.shard_stats.sharded_rounds == 0
            assert planner.shard_stats.inline_rounds >= 1
        finally:
            planner.close()

    def test_custom_link_model_stays_in_process(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 8)
        link_model = _FixedLatencyLinkModel(
            ring_topology([agent.agent_id for agent in agents])
        )
        planner = ShardedPlanner(
            PROFILE, link_model, top_k=7, shards=2, shard_min_population=0
        )
        try:
            actual, _ = planner.plan(agents)
            expected, _ = PrunedPlanner(PROFILE, link_model, top_k=7).plan(agents)
            assert actual == expected
            assert planner.shard_stats.sharded_rounds == 0
        finally:
            planner.close()

    def test_default_population_floor_keeps_small_plans_inline(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 8)
        link_model = _link_model(agents, "ring")
        planner = ShardedPlanner(PROFILE, link_model, top_k=7, shards=2)
        try:
            assert planner.shard_min_population == DEFAULT_SHARD_MIN_POPULATION
            actual, _ = planner.plan(agents)
            expected, _ = PrunedPlanner(PROFILE, link_model, top_k=7).plan(agents)
            assert actual == expected
            assert planner.shard_stats.sharded_rounds == 0
            assert planner.segment_names() == []
        finally:
            planner.close()

    def test_single_shard_never_builds_a_pool(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 8)
        planner = _sharded(agents, _link_model(agents, "ring"), shards=1)
        try:
            planner.plan(agents)
            assert planner._runtime is None
            assert planner.segment_names() == []
        finally:
            planner.close()

    def test_empty_round_plans_empty(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 4)
        planner = _sharded(agents, _link_model(agents, "ring"), shards=2)
        try:
            decisions, taus = planner.plan([])
            assert decisions == []
            assert taus == {}
        finally:
            planner.close()


# ----------------------------------------------------------------------
# Validation and wiring through build_planner / the config boundary
# ----------------------------------------------------------------------
class TestValidationAndWiring:
    def test_resolve_shard_count(self):
        assert resolve_shard_count(3) == 3
        assert 1 <= resolve_shard_count("auto") <= MAX_AUTO_SHARDS
        assert resolve_shard_count("AUTO") == resolve_shard_count("auto")
        with pytest.raises(ValueError):
            resolve_shard_count(0)
        with pytest.raises(ValueError):
            resolve_shard_count(-2)
        with pytest.raises(ValueError):
            resolve_shard_count("bogus")

    def test_planner_rejects_invalid_arguments(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 2)
        link_model = _link_model(agents, "ring")
        with pytest.raises(ValueError):
            ShardedPlanner(PROFILE, link_model, shards=0)
        with pytest.raises(ValueError):
            ShardedPlanner(PROFILE, link_model, shard_min_population=-1)

    def test_build_planner_sharded_mode(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 4)
        link_model = _link_model(agents, "ring")
        planner = build_planner(
            PROFILE, link_model, mode="sharded", top_k=8, shards=3
        )
        try:
            assert isinstance(planner, ShardedPlanner)
            assert planner.shards == 3
            assert planner.top_k == 8
        finally:
            planner.close()

    def test_base_planner_close_is_a_noop_context_manager(self):
        agents = _build_agents([(1.0, 50.0, 500, 100)] * 4)
        link_model = _link_model(agents, "ring")
        with PrunedPlanner(PROFILE, link_model, top_k=3) as planner:
            planner.plan(agents)
        planner.close()
