"""Tests for the virtual simulation clock."""

import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=10.0).now == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_jumps_forward(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_backwards_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now == 0.0

    def test_repr_contains_time(self):
        assert "2.000" in repr(SimClock(start=2.0))
