"""Tests for the cost-model primitives."""

import pytest

from repro.sim.costs import (
    BASELINE_FLOPS_PER_SECOND,
    compute_time_seconds,
    cpu_share_to_throughput,
    transfer_time_seconds,
)


class TestComputeTime:
    def test_scales_linearly_with_flops(self):
        assert compute_time_seconds(2e10, 1.0) == pytest.approx(
            2 * compute_time_seconds(1e10, 1.0)
        )

    def test_faster_cpu_is_faster(self):
        assert compute_time_seconds(1e10, 2.0) < compute_time_seconds(1e10, 1.0)

    def test_baseline_calibration(self):
        assert compute_time_seconds(BASELINE_FLOPS_PER_SECOND, 1.0) == pytest.approx(1.0)

    def test_zero_flops_takes_no_time(self):
        assert compute_time_seconds(0.0, 0.5) == 0.0

    def test_rejects_non_positive_cpu(self):
        with pytest.raises(ValueError):
            compute_time_seconds(1e9, 0.0)

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            compute_time_seconds(-1.0, 1.0)

    def test_scaling_exponent_compresses_gap(self):
        linear = compute_time_seconds(1e10, 4.0, scaling_exponent=1.0)
        sublinear = compute_time_seconds(1e10, 4.0, scaling_exponent=0.5)
        assert sublinear > linear


class TestThroughput:
    def test_monotone_in_share(self):
        assert cpu_share_to_throughput(2.0) > cpu_share_to_throughput(1.0)

    def test_rejects_zero_share(self):
        with pytest.raises(ValueError):
            cpu_share_to_throughput(0.0)


class TestTransferTime:
    def test_includes_latency(self):
        time = transfer_time_seconds(0.0, 1e6, latency_seconds=0.01)
        assert time == 0.0  # zero bytes short-circuits
        time = transfer_time_seconds(1e6, 1e6, latency_seconds=0.01)
        assert time == pytest.approx(1.01)

    def test_scales_with_bytes(self):
        small = transfer_time_seconds(1e6, 1e6, latency_seconds=0.0)
        large = transfer_time_seconds(3e6, 1e6, latency_seconds=0.0)
        assert large == pytest.approx(3 * small)

    def test_disconnected_link_rejected(self):
        with pytest.raises(ValueError):
            transfer_time_seconds(100.0, 0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            transfer_time_seconds(-1.0, 1e6)
