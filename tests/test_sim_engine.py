"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestSimulationEngine:
    def test_step_advances_clock(self):
        engine = SimulationEngine()
        engine.schedule_at(3.0, kind="tick")
        event = engine.step()
        assert event.kind == "tick"
        assert engine.now == 3.0

    def test_step_empty_returns_none(self):
        assert SimulationEngine().step() is None

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0)
        engine.step()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0)

    def test_schedule_after(self):
        engine = SimulationEngine()
        engine.schedule_after(2.0, kind="later")
        engine.step()
        assert engine.now == 2.0

    def test_schedule_after_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_after(-1.0)

    def test_callbacks_invoked(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(1.0, kind="x", callback=lambda event: seen.append(event.kind))
        engine.step()
        assert seen == ["x"]

    def test_kind_handlers_invoked(self):
        engine = SimulationEngine()
        seen = []
        engine.on("churn", lambda event: seen.append(event.timestamp))
        engine.schedule_at(1.0, kind="churn")
        engine.schedule_at(2.0, kind="other")
        engine.run()
        assert seen == [1.0]

    def test_run_until_processes_only_due_events(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0)
        engine.schedule_at(10.0)
        processed = engine.run_until(5.0)
        assert processed == 1
        assert engine.now == 5.0
        assert len(engine.queue) == 1

    def test_run_drains_queue(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t)
        assert engine.run() == 3
        assert engine.processed_events == 3

    def test_run_with_max_events(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t)
        assert engine.run(max_events=2) == 2
        assert len(engine.queue) == 1
