"""Tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_timestamp(self):
        queue = EventQueue()
        queue.schedule(5.0, kind="later")
        queue.schedule(1.0, kind="sooner")
        assert queue.pop().kind == "sooner"
        assert queue.pop().kind == "later"

    def test_ties_broken_by_priority(self):
        queue = EventQueue()
        queue.schedule(1.0, kind="low", priority=5)
        queue.schedule(1.0, kind="high", priority=0)
        assert queue.pop().kind == "high"

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.schedule(1.0, kind="first")
        queue.schedule(1.0, kind="second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0)
        assert queue and len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(1.0, kind="only")
        assert queue.peek().kind == "only"
        assert len(queue) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.schedule(2.0)
        queue.clear()
        assert len(queue) == 0

    def test_payload_and_callback_preserved(self):
        queue = EventQueue()
        payload = {"round": 3}
        callback = lambda event: None
        queue.schedule(2.0, kind="custom", payload=payload, callback=callback)
        event = queue.pop()
        assert event.payload is payload
        assert event.callback is callback

    def test_push_assigns_sequence(self):
        queue = EventQueue()
        first = queue.push(Event(timestamp=1.0))
        second = queue.push(Event(timestamp=1.0))
        assert second.sequence > first.sequence
