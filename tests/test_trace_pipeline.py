"""Property, golden, and fault tests for the streaming trace pipeline.

Covers the conservation invariant (``emitted == delivered + dropped`` per
sink, from independent counters) under Hypothesis-generated bursts,
capacities and filter stacks; filter-order invariance for commuting
stages; sink round-trip equality (JSONL and SQLite vs the in-memory
view); adaptive sampling under a deterministic synthetic burst; buffer
overflow policies; fault injection on a failing sink; and the legacy /
golden guarantees — a default pipeline config reduces byte-identically
to the pre-pipeline bounded list.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: tmp_path is function-scoped but the sinks under test recreate their
#: files per example, so sharing the directory across examples is safe.
FIXTURE_OK = [HealthCheck.function_scoped_fixture]

from repro.core.config import ComDMLConfig
from repro.experiments.reporting import (
    StreamingTraceSummary,
    dynamics_annotation,
    format_dynamics_summary,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.runtime.audit import ChainState
from repro.runtime.filters import (
    DEBUG,
    IMPORTANT,
    INFO,
    AdaptiveSamplingFilter,
    KindFilter,
    LevelFilter,
    TokenBucketFilter,
    event_level,
)
from repro.runtime.sinks import (
    CallbackSink,
    JSONLSink,
    MemorySink,
    SQLiteSink,
    TraceSink,
    load_sqlite_trace,
    make_sink,
)
from repro.runtime.trace import EventTrace, build_event_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "runtime_sync_golden.json"
TRACE_GOLDEN_PATH = Path(__file__).parent / "data" / "trace_sync_golden.json"

#: Kinds spanning every trace level (IMPORTANT / INFO / DEBUG).
ALL_KINDS = (
    "round_start",
    "round_end",
    "aggregation",
    "churn",
    "unit_complete",
    "straggler_dropped",
    "unit_repriced",
    "engine_event",
)


def record_burst(trace: EventTrace, events) -> None:
    """Replay a list of ``(timestamp, round_index, kind)`` tuples."""
    for timestamp, round_index, kind in events:
        trace.record(timestamp, round_index, kind, detail={"t": timestamp})


@st.composite
def bursts(draw, max_events: int = 120):
    """Chronological synthetic event bursts with mixed kinds and gaps."""
    count = draw(st.integers(min_value=0, max_value=max_events))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    kinds = draw(
        st.lists(st.sampled_from(ALL_KINDS), min_size=count, max_size=count)
    )
    events, now = [], 0.0
    for gap, kind in zip(gaps, kinds):
        now += gap
        events.append((now, int(now // 10), kind))
    return events


@st.composite
def filter_stacks(draw):
    """Random (possibly empty) stacks of every filter stage type."""
    stack = []
    if draw(st.booleans()):
        stack.append(LevelFilter(draw(st.sampled_from((DEBUG, INFO, IMPORTANT)))))
    if draw(st.booleans()):
        deny = draw(st.sets(st.sampled_from(ALL_KINDS), max_size=3))
        stack.append(KindFilter(deny=deny))
    if draw(st.booleans()):
        stack.append(
            TokenBucketFilter(
                rate=draw(st.floats(min_value=0.1, max_value=50.0)),
                burst=draw(st.integers(min_value=1, max_value=16)),
            )
        )
    if draw(st.booleans()):
        stack.append(
            AdaptiveSamplingFilter(
                target_rate=draw(st.floats(min_value=0.5, max_value=20.0))
            )
        )
    return stack


# ----------------------------------------------------------------------
# Legacy surface (pre-pipeline semantics must survive unchanged)
# ----------------------------------------------------------------------

class TestLegacyParity:
    def test_capacity_drops_new_events_and_counts(self):
        trace = EventTrace(max_events=3)
        kept = [trace.record(float(i), 0, "unit_complete") for i in range(10)]
        assert len(trace.events) == 3
        assert trace.dropped_events == 7
        assert all(event is not None for event in kept[:3])
        assert all(event is None for event in kept[3:])

    def test_record_returns_event_and_queries_work(self):
        trace = EventTrace()
        trace.record(0.0, 0, "round_start")
        trace.record(1.0, 0, "unit_complete", (1, 2))
        trace.record(2.0, 1, "unit_complete", (2,))
        assert len(trace) == 3
        assert [e.kind for e in trace.of_kind("unit_complete")] == [
            "unit_complete",
            "unit_complete",
        ]
        assert len(trace.for_agent(2)) == 2
        assert len(trace.for_round(1)) == 1
        assert trace.agent_ids() == [1, 2]
        assert trace.kind_counts()["unit_complete"] == 2

    def test_default_config_builds_pure_legacy_trace(self):
        trace = build_event_trace(ComDMLConfig())
        assert trace.filters == ()
        assert len(trace.sinks) == 1
        assert isinstance(trace.sinks[0], MemorySink)
        assert trace.max_events == ComDMLConfig().trace_max_events
        assert trace.buffer_capacity is None


class TestGoldenByteIdentity:
    """The sync golden event stream with the default pipeline config."""

    def test_default_pipeline_matches_committed_golden_chain(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        expected = json.loads(TRACE_GOLDEN_PATH.read_text())
        runner = ExperimentRunner(ScenarioConfig(**golden["scenario"]))
        _, trace = runner.run_method_with_trace(expected["method"])
        chain = ChainState()
        for payload in trace.to_dicts():
            chain.update(payload)
        assert len(trace.events) == expected["events"]
        assert trace.dropped_events == expected["dropped_events"]
        assert trace.kind_counts() == expected["kind_counts"]
        assert chain.head == expected["chain_head"]

    def test_empty_pipeline_config_is_byte_identical_to_legacy(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        runner = ExperimentRunner(ScenarioConfig(**golden["scenario"]))
        _, default_trace = runner.run_method_with_trace("ComDML")
        legacy = EventTrace(max_events=ComDMLConfig().trace_max_events)
        runner2 = ExperimentRunner(ScenarioConfig(**golden["scenario"]))
        _, explicit_trace = runner2.run_method_with_trace("ComDML", trace=legacy)
        assert explicit_trace is legacy
        assert json.dumps(default_trace.to_dicts()) == json.dumps(
            explicit_trace.to_dicts()
        )
        assert default_trace.dropped_events == explicit_trace.dropped_events


# ----------------------------------------------------------------------
# Conservation: emitted == delivered + dropped, per sink, always
# ----------------------------------------------------------------------

class TestConservationProperty:
    @given(events=bursts(), capacity=st.one_of(st.none(), st.integers(1, 40)))
    @settings(max_examples=60, deadline=None)
    def test_memory_sink_conservation(self, events, capacity):
        trace = EventTrace(max_events=capacity)
        record_burst(trace, events)
        row = trace.accounting()["memory"]
        assert row["emitted"] == len(events)
        assert row["emitted"] == row["delivered"] + row["dropped"]
        assert row["delivered"] == len(trace.events)
        trace.check_conservation()

    @given(events=bursts(), filters=filter_stacks())
    @settings(max_examples=60, deadline=None, suppress_health_check=FIXTURE_OK)
    def test_filter_stack_conservation_all_sinks(self, events, filters, tmp_path):
        received = []
        trace = EventTrace(
            max_events=25,
            filters=filters,
            sinks=(
                CallbackSink(received.append),
                JSONLSink(tmp_path / "t.jsonl", segment_events=10),
            ),
        )
        record_burst(trace, events)
        trace.flush()
        for name, row in trace.accounting().items():
            assert row["emitted"] == len(events), name
            assert row["buffered"] == 0, name
            assert row["emitted"] == row["delivered"] + row["dropped"], name
        # filter drops are common to every sink; sink-local drops differ
        filtered = trace.stats.filtered_total
        assert trace.accounting()["callback"]["dropped"] == filtered
        assert len(received) == len(events) - filtered
        trace.close()

    @given(
        events=bursts(max_events=80),
        buffer_capacity=st.integers(1, 16),
        overflow=st.sampled_from(("flush", "drop")),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=FIXTURE_OK)
    def test_buffered_deferred_sink_conservation(
        self, events, buffer_capacity, overflow, tmp_path
    ):
        sink = JSONLSink(tmp_path / "t.jsonl", segment_events=None)
        trace = EventTrace(
            sinks=(sink,), buffer_capacity=buffer_capacity, overflow=overflow
        )
        record_burst(trace, events)
        trace.flush()
        row = trace.accounting()["jsonl"]
        assert row["emitted"] == len(events)
        assert row["emitted"] == row["delivered"] + row["dropped"]
        if overflow == "flush":
            # flush policy never loses events for the file sink
            assert row["dropped"] == 0
            assert sink.delivered == len(events)
        trace.close()

    def test_overflow_drop_counts_against_deferred_sinks_only(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl", segment_events=None)
        trace = EventTrace(sinks=(sink,), buffer_capacity=2, overflow="drop")
        for i in range(5):
            trace.record(float(i), 0, "unit_complete")
        # buffer filled at 2, drained once, refilled, then drops
        assert trace.stats.buffer_dropped > 0
        assert trace.accounting()["memory"]["dropped"] == 0
        row = trace.accounting()["jsonl"]
        assert row["emitted"] == 5
        assert row["emitted"] == row["delivered"] + row["dropped"] + row["buffered"]
        trace.close()

    def test_failing_sink_counts_drops_not_crashes(self):
        class FlakySink(TraceSink):
            name = "flaky"

            def emit(self, event):
                if int(event.timestamp) % 2 == 0:
                    raise RuntimeError("injected fault")
                self.delivered += 1
                return True

        trace = EventTrace(sinks=(FlakySink(),))
        for i in range(10):
            assert trace.record(float(i), 0, "unit_complete") is not None
        row = trace.accounting()["flaky"]
        assert row["delivered"] == 5
        assert row["dropped"] == 5
        assert trace.stats.sink_errors["flaky"] == 5
        # the memory sink is unaffected by the flaky sibling
        assert len(trace.events) == 10
        trace.check_conservation()


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------

class TestFilters:
    def test_event_levels(self):
        assert event_level("round_start") == IMPORTANT
        assert event_level("unit_complete") == INFO
        assert event_level("engine_event") == DEBUG

    @given(events=bursts())
    @settings(max_examples=40, deadline=None)
    def test_commuting_stages_are_order_invariant(self, events):
        """Stateless stages (level, kind) admit the same set in any order."""
        stacks = (
            [LevelFilter(INFO), KindFilter(deny=("churn",))],
            [KindFilter(deny=("churn",)), LevelFilter(INFO)],
        )
        results = []
        for stack in stacks:
            trace = EventTrace(filters=stack)
            record_burst(trace, events)
            results.append([e.kind for e in trace.events])
        assert results[0] == results[1]

    def test_token_bucket_refills_on_simulated_time(self):
        bucket = TokenBucketFilter(rate=1.0, burst=2.0)
        trace = EventTrace(filters=[bucket])
        # burst of 3 at t=0: two admitted, one dropped
        for _ in range(3):
            trace.record(0.0, 0, "unit_complete")
        assert len(trace.events) == 2
        # 5 simulated seconds refill the bucket (capped at burst=2)
        trace.record(5.0, 0, "unit_complete")
        trace.record(5.0, 0, "unit_complete")
        trace.record(5.0, 0, "unit_complete")
        assert len(trace.events) == 4
        assert trace.dropped_events == 2
        trace.check_conservation()

    def test_adaptive_sampler_tightens_and_recovers(self):
        """Deterministic burst: stride doubles under load, halves after."""
        sampler = AdaptiveSamplingFilter(target_rate=10.0, window_seconds=1.0)
        trace = EventTrace(filters=[sampler])
        # Three hot windows at 100 events/s: the sampler tightens.
        strides = []
        for window in range(3):
            for i in range(100):
                trace.record(window + i / 100.0, 0, "unit_complete")
            strides.append(sampler.stride)
        # next window rolls the last hot one in; stride has grown
        trace.record(3.0, 0, "unit_complete")
        assert sampler.stride > 1
        peak = sampler.stride
        # Quiet windows (1 event/s <= target/2): the sampler relaxes.
        for window in range(4, 12):
            trace.record(float(window), 0, "unit_complete")
        assert sampler.stride < peak
        # Sampled-out events are explicit drops, never silently skipped.
        assert trace.dropped_events > 0
        row = trace.accounting()["memory"]
        assert row["emitted"] == row["delivered"] + row["dropped"]
        assert trace.dropped_events == trace.stats.filtered["adaptive-sampling"]

    def test_level_filter_drops_are_attributed_to_stage(self):
        trace = EventTrace(filters=[LevelFilter(IMPORTANT)])
        trace.record(0.0, 0, "round_start")
        trace.record(1.0, 0, "unit_complete")
        trace.record(2.0, 0, "engine_event")
        assert [e.kind for e in trace.events] == ["round_start"]
        assert trace.stats.filtered[f"level>={IMPORTANT}"] == 2


# ----------------------------------------------------------------------
# Sink round-trips
# ----------------------------------------------------------------------

class TestSinkRoundTrips:
    @given(events=bursts(max_events=60))
    @settings(max_examples=30, deadline=None, suppress_health_check=FIXTURE_OK)
    def test_jsonl_sink_round_trips_memory_view(self, events, tmp_path):
        from repro.runtime.audit import read_sealed_events, verify_sealed_jsonl

        path = tmp_path / "t.jsonl"
        trace = EventTrace(sinks=(JSONLSink(path, segment_events=7),))
        record_burst(trace, events)
        trace.close()
        assert verify_sealed_jsonl(path).ok
        assert read_sealed_events(path) == trace.to_dicts()

    def test_sqlite_sink_round_trips_memory_view(self, tmp_path):
        path = tmp_path / "t.db"
        trace = EventTrace(sinks=(SQLiteSink(path),))
        trace.record(0.0, 0, "round_start")
        trace.record(1.5, 0, "unit_complete", (1, 2), detail={"duration": 1.5})
        trace.record(2.0, 0, "round_end", detail={"accuracy": 0.5})
        trace.close()
        assert load_sqlite_trace(path) == trace.to_dicts()

    def test_callback_sink_sees_admitted_events_in_order(self):
        seen = []
        trace = EventTrace(sinks=(CallbackSink(seen.append),))
        trace.record(0.0, 0, "round_start")
        trace.record(1.0, 0, "unit_complete", (3,))
        assert [e.kind for e in seen] == ["round_start", "unit_complete"]

    def test_make_sink_specs(self, tmp_path):
        assert isinstance(make_sink("memory"), MemorySink)
        assert make_sink("memory:50").max_events == 50
        jsonl = make_sink(f"jsonl:{tmp_path / 'a.jsonl'}")
        assert isinstance(jsonl, JSONLSink)
        jsonl.close()
        sqlite = make_sink(f"sqlite:{tmp_path / 'a.db'}")
        assert isinstance(sqlite, SQLiteSink)
        sqlite.close()
        with pytest.raises(ValueError):
            make_sink("kafka:nope")
        with pytest.raises(ValueError):
            make_sink("jsonl")


# ----------------------------------------------------------------------
# Config / runtime integration
# ----------------------------------------------------------------------

class TestPipelineIntegration:
    def test_config_builds_filters_and_sinks(self, tmp_path):
        config = ComDMLConfig(
            trace_min_level=INFO,
            trace_rate_limit=100.0,
            trace_adaptive_target=50.0,
            trace_jsonl_path=str(tmp_path / "t.jsonl"),
            trace_sqlite_path=str(tmp_path / "t.db"),
            trace_buffer_capacity=8,
            trace_overflow="drop",
        )
        trace = build_event_trace(config)
        names = [type(f).__name__ for f in trace.filters]
        assert names == [
            "LevelFilter",
            "TokenBucketFilter",
            "AdaptiveSamplingFilter",
        ]
        assert {type(s).__name__ for s in trace.sinks} == {
            "MemorySink",
            "JSONLSink",
            "SQLiteSink",
        }
        assert trace.buffer_capacity == 8
        assert trace.overflow == "drop"
        trace.close()

    def test_config_validates_trace_fields(self):
        with pytest.raises(ValueError):
            ComDMLConfig(trace_overflow="panic")
        with pytest.raises(ValueError):
            ComDMLConfig(trace_rate_limit=-1.0)
        with pytest.raises(ValueError):
            ComDMLConfig(trace_buffer_capacity=0)
        with pytest.raises(ValueError):
            ComDMLConfig(trace_min_level=-1)

    def test_runtime_streams_to_jsonl_sink_from_config(self, tmp_path):
        from repro.runtime.audit import verify_sealed_jsonl

        golden = json.loads(GOLDEN_PATH.read_text())
        scenario = dict(golden["scenario"], max_rounds=3)
        runner = ExperimentRunner(ScenarioConfig(**scenario))
        path = tmp_path / "run.jsonl"
        history = runner.run_method_sealed("ComDML", path)
        assert len(history) == 3
        result = verify_sealed_jsonl(path)
        assert result.ok
        assert result.events > 0

    def test_engine_observer_records_debug_events(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        scenario = dict(golden["scenario"], max_rounds=2)
        runner = ExperimentRunner(ScenarioConfig(**scenario))
        trainer = runner.build_method("ComDML")
        trainer.runtime.config.trace_engine_events = True
        trainer.runtime.engine.subscribe(trainer.runtime._observe_engine_event)
        trainer.run()
        engine_events = trainer.trace.of_kind("engine_event")
        assert engine_events
        assert all(e.detail and "engine_kind" in e.detail for e in engine_events)

    def test_streaming_summary_matches_post_hoc_rendering(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        runner = ExperimentRunner(ScenarioConfig(**golden["scenario"]))
        summary = StreamingTraceSummary()
        trace = EventTrace(
            max_events=ComDMLConfig().trace_max_events, sinks=(summary.sink(),)
        )
        summary.bind(trace)
        runner.run_method_with_trace("ComDML", trace=trace)
        assert summary.kind_counts() == trace.kind_counts()
        assert dynamics_annotation(summary) == dynamics_annotation(trace)
        assert format_dynamics_summary(summary) == format_dynamics_summary(trace)

    def test_dynamics_summary_surfaces_drop_counter(self):
        trace = EventTrace(max_events=2)
        trace.record(0.0, 0, "churn", (1,))
        trace.record(1.0, 0, "churn", (2,))
        trace.record(2.0, 1, "churn", (3,))  # dropped at capacity
        rendered = format_dynamics_summary(trace)
        assert "1 trace events dropped" in rendered
        no_drops = EventTrace()
        no_drops.record(0.0, 0, "churn", (1,))
        assert "dropped by capacity" not in format_dynamics_summary(no_drops)
