"""Tests for the accuracy trackers (curve-based and proxy-training-based)."""

import numpy as np
import pytest

from repro.core.pairing import PairingDecision
from repro.core.workload import OffloadEstimate
from repro.data.partition import iid_partition
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec
from repro.training.accuracy import CurveAccuracyTracker, ProxyAccuracyTracker
from repro.training.curves import LearningCurveModel, curve_preset_for


def solo_decision(agent_id, time=10.0):
    estimate = OffloadEstimate(0, time, 0.0, 0.0, 0.0, time)
    return PairingDecision(slow_id=agent_id, fast_id=None, offloaded_layers=0, estimate=estimate)


def pair_decision(slow_id, fast_id, offloaded=27):
    estimate = OffloadEstimate(offloaded, 5.0, 3.0, 1.0, 2.0, 6.0)
    return PairingDecision(
        slow_id=slow_id, fast_id=fast_id, offloaded_layers=offloaded, estimate=estimate
    )


class TestCurveAccuracyTracker:
    def test_accuracy_advances(self):
        curve = LearningCurveModel(
            preset=curve_preset_for("cifar10", "resnet56"),
            method="comdml",
            noise_scale=0.0,
        )
        tracker = CurveAccuracyTracker(curve)
        first = tracker.after_round([solo_decision(0)], 1.0, 0.001)
        second = tracker.after_round([solo_decision(0)], 1.0, 0.001)
        assert second > first


@pytest.fixture(scope="module")
def proxy_setup():
    train, test = cifar10_like(train_samples=800, test_samples=400, num_features=32, seed=4)
    shards = iid_partition(train.labels, 4, np.random.default_rng(0))
    datasets = {i: train.subset(shards[i], f"agent{i}") for i in range(4)}
    factory = ProxyModelFactory(
        spec=resnet56_spec(), input_features=32, num_blocks=3, width=24
    )
    return factory, datasets, test


class TestProxyAccuracyTracker:
    def test_solo_training_improves_accuracy(self, proxy_setup):
        factory, datasets, test = proxy_setup
        tracker = ProxyAccuracyTracker(factory, datasets, test, batch_size=50, seed=0)
        initial = tracker.current_accuracy()
        decisions = [solo_decision(i) for i in range(4)]
        accuracy = initial
        for _ in range(4):
            accuracy = tracker.after_round(decisions, 1.0, 0.05)
        assert accuracy > initial + 0.1

    def test_split_training_improves_accuracy(self, proxy_setup):
        factory, datasets, test = proxy_setup
        tracker = ProxyAccuracyTracker(factory, datasets, test, batch_size=50, seed=1)
        initial = tracker.current_accuracy()
        decisions = [pair_decision(0, 1), pair_decision(2, 3)]
        accuracy = initial
        for _ in range(4):
            accuracy = tracker.after_round(decisions, 1.0, 0.05)
        assert accuracy > initial + 0.1

    def test_global_parameters_updated(self, proxy_setup):
        factory, datasets, test = proxy_setup
        tracker = ProxyAccuracyTracker(factory, datasets, test, batch_size=50, seed=2)
        before = tracker.global_parameters.copy()
        tracker.after_round([solo_decision(0)], 1.0, 0.05)
        assert not np.allclose(before, tracker.global_parameters)

    def test_empty_decisions_keep_model(self, proxy_setup):
        factory, datasets, test = proxy_setup
        tracker = ProxyAccuracyTracker(factory, datasets, test, batch_size=50, seed=3)
        before = tracker.global_parameters.copy()
        accuracy = tracker.after_round([], 1.0, 0.05)
        assert np.allclose(before, tracker.global_parameters)
        assert 0.0 <= accuracy <= 1.0

    def test_unknown_agent_ids_skipped(self, proxy_setup):
        factory, datasets, test = proxy_setup
        tracker = ProxyAccuracyTracker(factory, datasets, test, batch_size=50, seed=4)
        accuracy = tracker.after_round([solo_decision(99)], 1.0, 0.05)
        assert 0.0 <= accuracy <= 1.0

    def test_parameter_transform_applied(self, proxy_setup):
        factory, datasets, test = proxy_setup
        calls = []

        def transform(vector):
            calls.append(vector.size)
            return vector

        tracker = ProxyAccuracyTracker(
            factory, datasets, test, batch_size=50, seed=5, parameter_transform=transform
        )
        tracker.after_round([solo_decision(0), solo_decision(1)], 1.0, 0.05)
        assert len(calls) == 2
