"""Tests for the calibrated learning-curve model."""

import numpy as np
import pytest

from repro.training.curves import (
    CurvePreset,
    LearningCurveModel,
    METHOD_EFFICIENCY,
    curve_preset_for,
)


class TestCurvePresets:
    def test_lookup_known_combinations(self):
        for dataset in ("cifar10", "cifar100", "cinic10"):
            for model in ("resnet56", "resnet110"):
                assert curve_preset_for(dataset, model) is not None

    def test_lookup_normalises_names(self):
        assert curve_preset_for("CIFAR-10-like", "ResNet-56") is curve_preset_for(
            "cifar10", "resnet56"
        )

    def test_unknown_combination_rejected(self):
        with pytest.raises(KeyError):
            curve_preset_for("imagenet", "resnet56")

    def test_invalid_preset_rejected(self):
        with pytest.raises(ValueError):
            CurvePreset(accuracy_initial=0.5, accuracy_final=0.4, rate=0.1)


class TestLearningCurveModel:
    def make(self, method="comdml", iid=True, noise=0.0):
        return LearningCurveModel(
            preset=curve_preset_for("cifar10", "resnet56"),
            method=method,
            iid=iid,
            noise_scale=noise,
            rng=np.random.default_rng(0),
        )

    def test_accuracy_monotone_without_noise(self):
        curve = self.make()
        accuracies = [curve.advance_round() for _ in range(50)]
        assert all(a <= b + 1e-12 for a, b in zip(accuracies, accuracies[1:]))

    def test_accuracy_bounded_by_asymptote(self):
        curve = self.make()
        for _ in range(2_000):
            accuracy = curve.advance_round()
        assert accuracy <= curve.accuracy_final + 1e-9

    def test_target_accuracies_reachable(self):
        assert self.make().rounds_to_accuracy(0.90) < 400
        noniid = self.make(iid=False)
        assert noniid.rounds_to_accuracy(0.85) < 400

    def test_gossip_needs_more_rounds_than_allreduce(self):
        gossip = self.make(method="gossip").rounds_to_accuracy(0.80)
        allreduce = self.make(method="allreduce").rounds_to_accuracy(0.80)
        assert gossip > allreduce

    def test_partial_participation_slows_progress(self):
        full = self.make().rounds_to_accuracy(0.80, participation_fraction=1.0)
        partial = self.make().rounds_to_accuracy(0.80, participation_fraction=0.2)
        assert partial > full * 3

    def test_non_iid_lowers_asymptote(self):
        assert self.make(iid=False).accuracy_final < self.make(iid=True).accuracy_final

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            self.make().rounds_to_accuracy(0.99)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            self.make(method="magic")

    def test_rounds_to_accuracy_matches_simulation(self):
        curve = self.make()
        predicted = curve.rounds_to_accuracy(0.85)
        simulation = self.make()
        rounds = 0
        while simulation.advance_round() < 0.85:
            rounds += 1
        assert abs(rounds + 1 - predicted) <= 2

    def test_method_efficiencies_cover_all_baselines(self):
        for key in ("comdml", "fedavg", "fedprox", "allreduce", "braintorrent", "gossip"):
            assert key in METHOD_EFFICIENCY

    def test_invalid_participation_rejected(self):
        with pytest.raises(ValueError):
            self.make().advance_round(participation_fraction=1.5)
