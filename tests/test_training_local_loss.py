"""Tests for local-loss split training."""

import numpy as np
import pytest

from repro.data.synthetic import cifar10_like
from repro.models.proxy import build_proxy_classifier
from repro.models.split import split_sequential
from repro.nn.serialization import get_flat_parameters
from repro.training.local_loss import LocalLossSplitTrainer
from repro.training.trainer import evaluate_accuracy


@pytest.fixture(scope="module")
def task():
    return cifar10_like(train_samples=600, test_samples=300, num_features=32, seed=1)


class TestLocalLossSplitTrainer:
    def test_split_training_improves_accuracy(self, task):
        train, test = task
        rng = np.random.default_rng(0)
        backbone = build_proxy_classifier(32, 10, num_blocks=3, width=24, rng=rng)
        split = split_sequential(backbone, 2, num_classes=10, rng=rng)
        before = evaluate_accuracy(backbone, test)
        trainer = LocalLossSplitTrainer(learning_rate=0.05, batch_size=50, local_epochs=5)
        result = trainer.train(split, train)
        after = evaluate_accuracy(backbone, test)
        assert result.batches > 0
        assert result.slow_loss > 0 and result.fast_loss > 0
        assert after > before + 0.1

    def test_both_sides_updated(self, task):
        train, _ = task
        rng = np.random.default_rng(1)
        backbone = build_proxy_classifier(32, 10, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 1, num_classes=10, rng=rng)
        slow_before = np.concatenate([p.value.ravel().copy() for p in split.slow_side.parameters()])
        fast_before = np.concatenate([p.value.ravel().copy() for p in split.fast_side.parameters()])
        LocalLossSplitTrainer(learning_rate=0.05, batch_size=50).train(split, train)
        slow_after = np.concatenate([p.value.ravel() for p in split.slow_side.parameters()])
        fast_after = np.concatenate([p.value.ravel() for p in split.fast_side.parameters()])
        assert not np.allclose(slow_before, slow_after)
        assert not np.allclose(fast_before, fast_after)

    def test_intermediate_scalars_counted(self, task):
        train, _ = task
        rng = np.random.default_rng(2)
        backbone = build_proxy_classifier(32, 10, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 1, num_classes=10, rng=rng)
        result = LocalLossSplitTrainer(batch_size=50).train(split, train)
        # Every sample's boundary activation (width 16) crossed the split once.
        assert result.intermediate_scalars == len(train) * 16

    def test_unsplit_model_trains_like_local(self, task):
        train, test = task
        rng = np.random.default_rng(3)
        backbone = build_proxy_classifier(32, 10, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 0, num_classes=10, rng=rng)
        result = LocalLossSplitTrainer(learning_rate=0.05, batch_size=50, local_epochs=3).train(split, train)
        assert result.fast_loss == 0.0
        assert result.intermediate_scalars == 0
        assert evaluate_accuracy(backbone, test) > 0.2

    def test_activation_transform_applied(self, task):
        train, _ = task
        rng = np.random.default_rng(4)
        calls = []

        def transform(activations):
            calls.append(activations.shape)
            return activations

        backbone = build_proxy_classifier(32, 10, num_blocks=2, width=16, rng=rng)
        split = split_sequential(backbone, 1, num_classes=10, rng=rng)
        LocalLossSplitTrainer(batch_size=50, activation_transform=transform).train(split, train)
        assert len(calls) == len(train) // 50

    def test_empty_dataset_is_noop(self):
        from repro.data.dataset import Dataset

        rng = np.random.default_rng(5)
        backbone = build_proxy_classifier(8, 2, num_blocks=1, width=8, rng=rng)
        split = split_sequential(backbone, 1, num_classes=2, rng=rng)
        before = get_flat_parameters(backbone).copy()
        result = LocalLossSplitTrainer().train(
            split, Dataset(np.zeros((0, 8)), np.zeros(0, dtype=int), 2)
        )
        assert result.batches == 0
        assert np.array_equal(get_flat_parameters(backbone), before)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            LocalLossSplitTrainer(batch_size=0)
