"""Tests for round records and run histories."""

import pytest

from repro.training.metrics import RoundRecord, RunHistory


def record(index, duration, cumulative, accuracy):
    return RoundRecord(
        round_index=index,
        duration_seconds=duration,
        cumulative_seconds=cumulative,
        accuracy=accuracy,
    )


class TestRunHistory:
    def test_append_and_totals(self):
        history = RunHistory("ComDML")
        history.append(record(0, 10.0, 10.0, 0.2))
        history.append(record(1, 10.0, 20.0, 0.5))
        assert len(history) == 2
        assert history.total_time == 20.0
        assert history.final_accuracy == 0.5

    def test_out_of_order_append_rejected(self):
        history = RunHistory("x")
        history.append(record(1, 1.0, 1.0, 0.1))
        with pytest.raises(ValueError):
            history.append(record(0, 1.0, 2.0, 0.2))

    def test_time_to_accuracy(self):
        history = RunHistory("x")
        history.append(record(0, 10.0, 10.0, 0.3))
        history.append(record(1, 10.0, 20.0, 0.6))
        history.append(record(2, 10.0, 30.0, 0.9))
        assert history.time_to_accuracy(0.5) == 20.0
        assert history.rounds_to_accuracy(0.5) == 2
        assert history.time_to_accuracy(0.95) is None
        assert history.rounds_to_accuracy(0.95) is None

    def test_best_accuracy_tracks_maximum(self):
        history = RunHistory("x")
        history.append(record(0, 1.0, 1.0, 0.7))
        history.append(record(1, 1.0, 2.0, 0.6))
        assert history.best_accuracy == 0.7
        assert history.final_accuracy == 0.6

    def test_empty_history_defaults(self):
        history = RunHistory("x")
        assert history.total_time == 0.0
        assert history.final_accuracy == 0.0
        assert history.best_accuracy == 0.0
        assert history.time_to_accuracy(0.5) is None

    def test_accuracies_and_times_lists(self):
        history = RunHistory("x")
        history.append(record(0, 2.0, 2.0, 0.1))
        history.append(record(1, 3.0, 5.0, 0.2))
        assert history.accuracies() == [0.1, 0.2]
        assert history.times() == [2.0, 5.0]

    def test_summary_dict(self):
        history = RunHistory("ComDML")
        history.append(record(0, 2.0, 2.0, 0.4))
        summary = history.summary()
        assert summary["method"] == "ComDML"
        assert summary["rounds"] == 1
        assert summary["final_accuracy"] == 0.4
