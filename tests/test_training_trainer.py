"""Tests for the standard local trainer."""

import numpy as np
import pytest

from repro.data.synthetic import cifar10_like
from repro.models.proxy import build_proxy_classifier
from repro.nn.serialization import get_flat_parameters
from repro.training.trainer import LocalTrainer, evaluate_accuracy


@pytest.fixture(scope="module")
def small_task():
    train, test = cifar10_like(train_samples=600, test_samples=300, num_features=32, seed=0)
    return train, test


class TestEvaluateAccuracy:
    def test_untrained_model_near_chance(self, small_task, rng):
        train, test = small_task
        model = build_proxy_classifier(32, 10, num_blocks=2, width=24, rng=rng)
        accuracy = evaluate_accuracy(model, test)
        assert 0.0 <= accuracy <= 0.35

    def test_empty_dataset_returns_zero(self, rng):
        from repro.data.dataset import Dataset

        model = build_proxy_classifier(4, 2, num_blocks=1, width=8, rng=rng)
        empty = Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 2)
        assert evaluate_accuracy(model, empty) == 0.0


class TestLocalTrainer:
    def test_training_reduces_loss_and_improves_accuracy(self, small_task, rng):
        train, test = small_task
        model = build_proxy_classifier(32, 10, num_blocks=2, width=24, rng=rng)
        before = evaluate_accuracy(model, test)
        trainer = LocalTrainer(learning_rate=0.05, batch_size=50, local_epochs=5)
        loss = trainer.train(model, train)
        after = evaluate_accuracy(model, test)
        assert loss > 0
        assert after > before + 0.1

    def test_zero_length_dataset_is_noop(self, rng):
        from repro.data.dataset import Dataset

        model = build_proxy_classifier(4, 2, num_blocks=1, width=8, rng=rng)
        before = get_flat_parameters(model).copy()
        empty = Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 2)
        assert LocalTrainer().train(model, empty) == 0.0
        assert np.array_equal(get_flat_parameters(model), before)

    def test_proximal_term_pulls_towards_reference(self, small_task, rng):
        train, _ = small_task
        reference_model = build_proxy_classifier(32, 10, num_blocks=2, width=24, rng=np.random.default_rng(5))
        reference = get_flat_parameters(reference_model)

        def run(mu):
            model = build_proxy_classifier(32, 10, num_blocks=2, width=24, rng=np.random.default_rng(5))
            trainer = LocalTrainer(
                learning_rate=0.05, batch_size=50, local_epochs=3, proximal_mu=mu
            )
            trainer.train(model, train, global_reference=reference)
            return np.linalg.norm(get_flat_parameters(model) - reference)

        assert run(mu=1.0) < run(mu=0.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            LocalTrainer(batch_size=0)
        with pytest.raises(ValueError):
            LocalTrainer(proximal_mu=-1.0)

    def test_explicit_learning_rate_override(self, small_task, rng):
        train, _ = small_task
        model = build_proxy_classifier(32, 10, num_blocks=1, width=16, rng=rng)
        trainer = LocalTrainer(learning_rate=0.001, batch_size=50, local_epochs=1)
        loss = trainer.train(model, train, learning_rate=0.05)
        assert loss > 0
