"""Tests for deterministic seeding."""

import numpy as np
import pytest

from repro.utils.seeding import SeedSequenceFactory, seeded_rng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(7).random(5)
        b = seeded_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = seeded_rng(7).random(5)
        b = seeded_rng(8).random(5)
        assert not np.array_equal(a, b)


class TestSeedSequenceFactory:
    def test_same_label_reproducible(self):
        first = SeedSequenceFactory(1).generator("data").random(4)
        second = SeedSequenceFactory(1).generator("data").random(4)
        assert np.array_equal(first, second)

    def test_different_labels_independent(self):
        factory = SeedSequenceFactory(1)
        a = factory.generator("data").random(4)
        b = factory.generator("topology").random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).generator("data").random(4)
        b = SeedSequenceFactory(2).generator("data").random(4)
        assert not np.array_equal(a, b)

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(1).generator("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("abc")

    def test_spawn_returns_factory(self):
        child = SeedSequenceFactory(3).spawn("agent-1")
        assert isinstance(child, SeedSequenceFactory)
        assert child.seed != 3 or child.generator("x") is not None

    def test_seed_property(self):
        assert SeedSequenceFactory(99).seed == 99
