"""Tests for unit conversions."""

import pytest

from repro.utils.units import (
    bits_to_bytes,
    bytes_per_second_to_mbps,
    bytes_to_megabytes,
    mbps_to_bytes_per_second,
    megabytes_to_bytes,
    seconds_to_human,
)


class TestBandwidthConversions:
    def test_mbps_to_bytes_per_second(self):
        assert mbps_to_bytes_per_second(8.0) == pytest.approx(1_000_000.0)

    def test_zero_mbps_is_zero(self):
        assert mbps_to_bytes_per_second(0.0) == 0.0

    def test_negative_mbps_rejected(self):
        with pytest.raises(ValueError):
            mbps_to_bytes_per_second(-1.0)

    def test_roundtrip(self):
        assert bytes_per_second_to_mbps(mbps_to_bytes_per_second(50.0)) == pytest.approx(50.0)

    def test_negative_bytes_per_second_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_second_to_mbps(-5.0)


class TestByteConversions:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(16) == 2.0

    def test_megabytes_roundtrip(self):
        assert bytes_to_megabytes(megabytes_to_bytes(3.5)) == pytest.approx(3.5)

    def test_megabytes_to_bytes_value(self):
        assert megabytes_to_bytes(1.0) == 1024 * 1024


class TestHumanDuration:
    def test_seconds_only(self):
        assert seconds_to_human(42) == "42s"

    def test_minutes(self):
        assert seconds_to_human(125) == "2m 05s"

    def test_hours(self):
        assert seconds_to_human(3723) == "1h 02m 03s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_human(-1)
