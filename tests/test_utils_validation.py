"""Tests for validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.2, "p")


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range(5, 0, 10, "v") == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(11, 0, 10, "v")


class TestCheckType:
    def test_accepts_match(self):
        assert check_type(3, int, "n") == 3

    def test_accepts_tuple_of_types(self):
        assert check_type(3.0, (int, float), "n") == 3.0

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError):
            check_type("3", int, "n")
