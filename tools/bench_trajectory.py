"""Perf-trajectory runner: benchmark the hot paths, append to the repo's history.

Runs the ``benchmarks/bench_micro.py`` suite under pytest-benchmark and
writes a machine-readable snapshot — per-bench median/stddev/mean/rounds,
the git SHA the numbers were measured on, and a UTC timestamp — to
``BENCH_<label>.json``.  Committing one snapshot per PR accumulates a perf
history that ``--check`` can gate on:

    # record PR 5's numbers
    PYTHONPATH=src python tools/bench_trajectory.py 5

    # CI: rerun the suite and fail if the 50-agent round-planning bench
    # regressed more than 2x against the committed baseline, if the
    # kernel's same-machine speedup over the scalar reference (the
    # machine-independent signal) fell below 4x, if the pruned planner's
    # scaling exponent drifted super-linear, if its 5000-agent round
    # got slower than the dense kernel's 500-agent round, if the sharded
    # planner's 50k round blew past its single-process partner, if the
    # incremental CSR engine lost its 3x edge over the full rebuild, if
    # the cost-balanced partitioner's realised per-shard spread skewed,
    # or if a planner shared-memory segment leaked into /dev/shm.
    # --quick skips the scale500k- and scale1m-marked benches.
    PYTHONPATH=src python tools/bench_trajectory.py ci --out bench-ci.json \
        --check BENCH_9.json --max-ratio 2.0 --min-speedup 4.0 \
        --max-exponent 1.3 --planner-dense-ratio 1.0 --shard-ratio 2.0 \
        --csr-ratio 3.0 --balance-spread 1.5 --fail-on-shm-leak --quick

Snapshot schema 2 adds per-bench ``extra`` columns (peak traced bytes and
high-water RSS from the scaling benches, sharded-round counters).  See
docs/performance.md for the file format and how to read it.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The bench gated by --check (overridable via --bench).
GATED_BENCH = "test_round_timing_speed"

#: Pair reported as a same-machine speedup when both are present.
SPEEDUP_PAIR = ("test_round_timing_speed_scalar", "test_round_timing_speed")

#: Scaling-curve column gated by --max-exponent: the pruned planner's
#: steady-state round on the random-k topology across populations.
SCALING_BENCH = "test_planner_round_speed"
SCALING_TOPOLOGY = "random-k"
SCALING_POPULATIONS = (50, 500, 5_000, 50_000)

#: Same-run pair gated by --planner-dense-ratio: the pruned planner's
#: 5 000-agent steady-state round must stay under this multiple of the
#: dense kernel's 500-agent round (the ISSUE 6 acceptance bar is 1.0).
PLANNER_DENSE_PAIR = (
    "test_planner_round_speed[random-k-5000]",
    "test_dense_round_speed_500",
)

#: Same-run pair gated by --shard-ratio: the sharded planner's 50k-agent
#: steady-state round against the single-process pruned planner on the
#: identical workload.  On multi-core hosts the ratio should sit below
#: 1.0; the CI gate is lenient (2.0) because single-core runners pay the
#: IPC overhead without any parallel speedup to show for it.
SHARD_PAIR = (
    "test_sharded_planner_round_speed[50000]",
    "test_planner_round_speed[random-k-50000]",
)

#: Same-run pair gated by --csr-ratio: the incremental CSR engine
#: absorbing a 50k-population arrival wave as O(Δ) journal edits against
#: the O(E) full rebuild of the same graph.  Unlike the other gates this
#: one fails when the ratio falls BELOW the bound (the acceptance bar is
#: 3.0: edits at least 3x faster than rescanning every link).
CSR_PAIR = (
    "test_csr_arrival_wave_rebuild_speed",
    "test_csr_arrival_wave_incremental_speed",
)

#: Bench whose ``cost_spread_max`` extra column --balance-spread gates:
#: the realised max-over-mean per-shard row-cost ratio of the sharded
#: 50k round (1.0 is a perfect split; the partitioner targets the
#: prefix-sum optimum, so sustained skew means balancing regressed).
SPREAD_BENCH = "test_sharded_planner_round_speed[50000]"

#: Prefix of the sharded planner's /dev/shm segments (mirrors
#: ``repro.core.shard.SHARD_SHM_PREFIX`` without importing the package,
#: which this tool deliberately avoids).
SHM_PREFIX = "comdml-shard-"

SCHEMA = 2


def scaling_exponent(benches: dict) -> float | None:
    """Least-squares slope of log(median) vs log(n) on the scaling column.

    Fitting the exponent rather than eyeballing the constant means the
    gate catches accidental O(n²) work (exponent drifting towards 2)
    even on a machine where every bench is uniformly faster or slower
    than the committed baseline.
    """
    import math

    points = []
    for population in SCALING_POPULATIONS:
        entry = benches.get(f"{SCALING_BENCH}[{SCALING_TOPOLOGY}-{population}]")
        if entry is None:
            return None
        points.append((math.log(population), math.log(entry["median_seconds"])))
    if len(points) < 2:
        return None
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    return sum((x - mean_x) * (y - mean_y) for x, y in points) / denominator


def _git(*args: str) -> str:
    try:
        return subprocess.run(
            ["git", *args], cwd=ROOT, check=True, capture_output=True, text=True
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return ""


def run_suite(pytest_args: list[str]) -> dict:
    """Run the micro suite, return the parsed pytest-benchmark JSON.

    GC is disabled inside timed rounds (``--benchmark-disable-gc``):
    collector pauses otherwise land in a few rounds of the allocation-
    heavy planner benches and inflate their medians by double-digit
    percentages run-to-run, which is noise for a trajectory whose gates
    compare medians — schema-2 snapshots are all recorded this way.
    """
    with tempfile.TemporaryDirectory(prefix="bench-trajectory-") as tmp:
        report = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_micro.py",
            "-q",
            f"--benchmark-json={report}",
            "--benchmark-disable-gc",
            *pytest_args,
        ]
        completed = subprocess.run(command, cwd=ROOT)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {completed.returncode})")
        return json.loads(report.read_text(encoding="utf-8"))


def snapshot(label: str, raw: dict) -> dict:
    """Reduce a pytest-benchmark report to the committed trajectory format."""
    benches = {}
    for entry in raw.get("benchmarks", []):
        stats = entry["stats"]
        row = {
            "median_seconds": stats["median"],
            "stddev_seconds": stats["stddev"],
            "mean_seconds": stats["mean"],
            "rounds": stats["rounds"],
        }
        extra = entry.get("extra_info") or {}
        if extra:
            row["extra"] = extra
        benches[entry["name"]] = row
    machine = raw.get("machine_info", {})
    return {
        "schema": SCHEMA,
        "label": label,
        "git_sha": _git("rev-parse", "HEAD"),
        "git_dirty": bool(_git("status", "--porcelain")),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": machine.get("python_version"),
        "machine": machine.get("machine"),
        "benches": benches,
    }


def check_regression(
    current: dict, baseline_path: Path, bench: str, max_ratio: float
) -> int:
    """Compare one bench's median against a committed baseline snapshot."""
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"check: cannot read baseline {baseline_path}: {error}")
        return 2
    base = baseline.get("benches", {}).get(bench)
    now = current["benches"].get(bench)
    if base is None or now is None:
        print(f"check: bench {bench!r} missing from baseline or current run")
        return 2
    ratio = now["median_seconds"] / base["median_seconds"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(
        f"check: {bench} median {now['median_seconds'] * 1e3:.3f} ms vs baseline "
        f"{base['median_seconds'] * 1e3:.3f} ms ({baseline_path.name}, "
        f"sha {baseline.get('git_sha', '?')[:9]}) -> {ratio:.2f}x "
        f"(limit {max_ratio:.1f}x) {verdict}"
    )
    return 0 if ratio <= max_ratio else 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("label", help="snapshot label, e.g. the PR number")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: BENCH_<label>.json in the repo root)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="committed baseline snapshot to gate against",
    )
    parser.add_argument(
        "--bench", default=GATED_BENCH, help="bench name gated by --check"
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when current/baseline median exceeds this (default 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail when the scalar/vectorized round-planning speedup measured "
            "in THIS run falls below this; machine-independent, so it stays "
            "meaningful when the committed baseline came from other hardware"
        ),
    )
    parser.add_argument(
        "--max-exponent",
        type=float,
        default=None,
        help=(
            "fail when the fitted scaling exponent of the pruned planner's "
            "random-k round (median vs population, log-log least squares) "
            "measured in THIS run exceeds this; catches super-linear growth "
            "independently of the machine's absolute speed"
        ),
    )
    parser.add_argument(
        "--planner-dense-ratio",
        type=float,
        default=None,
        help=(
            "fail when the pruned planner's 5000-agent round takes more than "
            "this multiple of the dense kernel's 500-agent round in THIS run "
            "(the acceptance bar is 1.0: 10x the agents in less time)"
        ),
    )
    parser.add_argument(
        "--shard-ratio",
        type=float,
        default=None,
        help=(
            "fail when the sharded planner's 50k-agent round takes more than "
            "this multiple of the single-process pruned planner's round on "
            "the identical workload in THIS run (use a lenient bound like "
            "2.0 on single-core runners, where the pool pays IPC overhead "
            "without parallel speedup)"
        ),
    )
    parser.add_argument(
        "--csr-ratio",
        type=float,
        default=None,
        help=(
            "fail when the incremental CSR engine's arrival-wave edit is "
            "less than this many times faster than the full O(E) rebuild "
            "of the same graph in THIS run (the acceptance bar is 3.0); "
            "machine-independent, both medians come from one process"
        ),
    )
    parser.add_argument(
        "--balance-spread",
        type=float,
        default=None,
        help=(
            "fail when the sharded 50k round's realised max-over-mean "
            "per-shard row-cost spread (its cost_spread_max extra column) "
            "exceeds this in THIS run (1.0 is a perfect split)"
        ),
    )
    parser.add_argument(
        "--fail-on-shm-leak",
        action="store_true",
        help=(
            "fail when a sharded-planner shared-memory segment "
            f"({SHM_PREFIX}*) survives in /dev/shm after the suite"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "skip the scale500k-marked half-million-agent benches and the "
            "scale1m-marked million-agent benches"
        ),
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    pytest_args = list(args.pytest_args)
    if args.quick:
        pytest_args += ["-m", "not scale500k and not scale1m"]
    raw = run_suite(pytest_args)
    snap = snapshot(args.label, raw)
    out = args.out if args.out is not None else ROOT / f"BENCH_{args.label}.json"
    out.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(snap['benches'])} benches, sha {snap['git_sha'][:9]})")

    status = 0
    scalar, vectorized = SPEEDUP_PAIR
    speedup = None
    if scalar in snap["benches"] and vectorized in snap["benches"]:
        speedup = (
            snap["benches"][scalar]["median_seconds"]
            / snap["benches"][vectorized]["median_seconds"]
        )
        print(f"round-planning kernel speedup on this machine: {speedup:.1f}x")
    if args.min_speedup is not None:
        if speedup is None:
            print("check: speedup pair missing from the suite")
            status = 2
        elif speedup < args.min_speedup:
            print(
                f"check: speedup {speedup:.1f}x below the {args.min_speedup:.1f}x "
                "floor REGRESSION"
            )
            status = 2

    exponent = scaling_exponent(snap["benches"])
    if exponent is not None:
        print(
            f"planner scaling exponent ({SCALING_TOPOLOGY}, "
            f"n={'/'.join(map(str, SCALING_POPULATIONS))}): {exponent:.2f}"
        )
    if args.max_exponent is not None:
        if exponent is None:
            print("check: scaling-curve benches missing from the suite")
            status = 2
        elif exponent > args.max_exponent:
            print(
                f"check: scaling exponent {exponent:.2f} above the "
                f"{args.max_exponent:.2f} ceiling REGRESSION"
            )
            status = 2

    pruned, dense = PLANNER_DENSE_PAIR
    planner_ratio = None
    if pruned in snap["benches"] and dense in snap["benches"]:
        planner_ratio = (
            snap["benches"][pruned]["median_seconds"]
            / snap["benches"][dense]["median_seconds"]
        )
        print(
            f"pruned 5000-agent round vs dense 500-agent round: "
            f"{planner_ratio:.2f}x"
        )
    if args.planner_dense_ratio is not None:
        if planner_ratio is None:
            print("check: planner/dense comparison benches missing from the suite")
            status = 2
        elif planner_ratio > args.planner_dense_ratio:
            print(
                f"check: planner/dense ratio {planner_ratio:.2f}x above the "
                f"{args.planner_dense_ratio:.2f}x limit REGRESSION"
            )
            status = 2

    sharded, single = SHARD_PAIR
    shard_ratio = None
    if sharded in snap["benches"] and single in snap["benches"]:
        shard_ratio = (
            snap["benches"][sharded]["median_seconds"]
            / snap["benches"][single]["median_seconds"]
        )
        print(
            f"sharded 50k-agent round vs single-process round: "
            f"{shard_ratio:.2f}x"
        )
    if args.shard_ratio is not None:
        if shard_ratio is None:
            print("check: sharded/single-process comparison benches missing")
            status = 2
        elif shard_ratio > args.shard_ratio:
            print(
                f"check: sharded/single ratio {shard_ratio:.2f}x above the "
                f"{args.shard_ratio:.2f}x limit REGRESSION"
            )
            status = 2

    rebuild, incremental = CSR_PAIR
    csr_ratio = None
    if rebuild in snap["benches"] and incremental in snap["benches"]:
        csr_ratio = (
            snap["benches"][rebuild]["median_seconds"]
            / snap["benches"][incremental]["median_seconds"]
        )
        print(
            f"incremental CSR arrival-wave edit vs full rebuild: "
            f"{csr_ratio:.1f}x faster"
        )
    if args.csr_ratio is not None:
        if csr_ratio is None:
            print("check: CSR arrival-wave benches missing from the suite")
            status = 2
        elif csr_ratio < args.csr_ratio:
            print(
                f"check: CSR edit speedup {csr_ratio:.1f}x below the "
                f"{args.csr_ratio:.1f}x floor REGRESSION"
            )
            status = 2

    spread = (
        snap["benches"]
        .get(SPREAD_BENCH, {})
        .get("extra", {})
        .get("cost_spread_max")
    )
    if spread is not None:
        print(f"sharded 50k round max per-shard cost spread: {spread:.2f}x")
    if args.balance_spread is not None:
        if spread is None:
            print("check: cost_spread_max column missing from the sharded bench")
            status = 2
        elif spread > args.balance_spread:
            print(
                f"check: shard cost spread {spread:.2f}x above the "
                f"{args.balance_spread:.2f}x limit REGRESSION"
            )
            status = 2

    if args.fail_on_shm_leak:
        shm_dir = Path("/dev/shm")
        leaked = (
            sorted(path.name for path in shm_dir.glob(SHM_PREFIX + "*"))
            if shm_dir.is_dir()
            else []
        )
        if leaked:
            print(f"check: leaked shared-memory segments in /dev/shm: {leaked}")
            status = 2
        else:
            print("check: no sharded-planner segments left in /dev/shm ok")

    if args.check is not None:
        status = max(
            status, check_regression(snap, args.check, args.bench, args.max_ratio)
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
