#!/usr/bin/env python3
"""Campaign cache smoke check (run in CI).

Runs a 2×2 mini-campaign (two datasets × two methods of the Table II grid)
twice through the ``comdml campaign run`` CLI with ``--jobs 2``:

1. the first run must compute every cell (cold cache);
2. the second run must be served **100 % from the cache** (zero misses)
   and produce identical cell payloads.

Exits non-zero on any violation.  Run locally with::

    PYTHONPATH=src python tools/campaign_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402  (needs src on sys.path first)
from repro.experiments import table2  # noqa: E402


def run(spec_path: Path, cache_dir: Path, summary_path: Path, payload_path: Path) -> dict:
    code = main(
        [
            "campaign",
            "run",
            str(spec_path),
            "--jobs",
            "2",
            "--cache-dir",
            str(cache_dir),
            "--summary-json",
            str(summary_path),
            "--json",
            str(payload_path),
        ]
    )
    if code != 0:
        raise SystemExit(f"campaign run exited with {code}")
    return json.loads(summary_path.read_text(encoding="utf-8"))


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(("ok  " if condition else "FAIL") + f" {message}")
    if not condition:
        failures.append(message)


def main_smoke() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as tmp:
        tmp_path = Path(tmp)
        spec = table2.campaign_spec(
            datasets=("cifar10", "cifar100"),
            distributions=(True,),
            methods=("ComDML", "FedAvg"),
            max_rounds=80,
        )
        spec_path = tmp_path / "mini.json"
        spec.save(spec_path)
        cache_dir = tmp_path / "cache"

        first = run(spec_path, cache_dir, tmp_path / "s1.json", tmp_path / "p1.json")
        second = run(spec_path, cache_dir, tmp_path / "s2.json", tmp_path / "p2.json")

        check(first["cells"] == 4, "mini-campaign expands to 2x2 = 4 cells", failures)
        check(
            first["cache_misses"] == first["cells"],
            "first run computes every cell (cold cache)",
            failures,
        )
        check(
            second["cache_hits"] == second["cells"] and second["cache_misses"] == 0,
            "second run is 100% cache hits",
            failures,
        )
        payloads_first = json.loads((tmp_path / "p1.json").read_text(encoding="utf-8"))
        payloads_second = json.loads((tmp_path / "p2.json").read_text(encoding="utf-8"))
        check(
            payloads_first == payloads_second,
            "cached payloads identical to computed ones",
            failures,
        )
        print(
            f"first run: {first['wall_seconds']:.2f}s wall "
            f"({first['speedup']:.2f}x vs serial cold run at jobs=2); "
            f"second run: {second['wall_seconds']:.2f}s wall"
        )
    if failures:
        for message in failures:
            print(f"FAILED: {message}", file=sys.stderr)
        return 1
    print("campaign smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
