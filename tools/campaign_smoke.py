#!/usr/bin/env python3
"""Campaign backend-matrix + cache smoke check (run in CI).

Three independent guarantees, exercised end to end through the real CLI:

1. **Backend matrix** — a 2×2 mini-campaign (two datasets × two methods
   of the Table II grid) runs on every execution backend: ``serial``,
   ``thread``, ``process``, and ``worker-pool`` (the last via two real
   ``comdml worker serve`` subprocesses attached over localhost TCP).
   All four ``--summary-json`` files must be byte-identical.
2. **Cache semantics** — the first (serial) run computes every cell,
   a repeat run over the same cache is 100 % hits, and its summary is
   *still* byte-identical (the summary is a pure function of the spec).
3. **Cache stability under edits** — in a throwaway copy of the source
   tree: editing a module *outside* a runner's import closure leaves the
   runner's cell key unchanged, bumping the package version leaves it
   unchanged, and editing the runner's own module changes it.

Exits non-zero on any violation.  Run locally with::

    PYTHONPATH=src python tools/campaign_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402  (needs src on sys.path first)
from repro.experiments import table2  # noqa: E402

BACKENDS = ("serial", "thread", "process", "worker-pool")


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(("ok  " if condition else "FAIL") + f" {message}")
    if not condition:
        failures.append(message)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run_backend(
    backend: str, spec_path: Path, tmp_path: Path
) -> tuple[dict, dict, list]:
    """One cold ``campaign run`` on ``backend``; returns (summary, report, payloads)."""
    cache_dir = tmp_path / f"cache-{backend}"
    summary = tmp_path / f"summary-{backend}.json"
    report = tmp_path / f"report-{backend}.json"
    payloads = tmp_path / f"payloads-{backend}.json"
    argv = [
        "campaign",
        "run",
        str(spec_path),
        "--backend",
        backend,
        "--jobs",
        "2",
        "--cache-dir",
        str(cache_dir),
        "--summary-json",
        str(summary),
        "--report-json",
        str(report),
        "--json",
        str(payloads),
        "--no-progress",
    ]
    workers: list[subprocess.Popen] = []
    if backend == "worker-pool":
        port = free_port()
        argv += ["--bind", f"127.0.0.1:{port}"]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        for index in range(2):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "worker",
                        "serve",
                        "--host",
                        "127.0.0.1",
                        "--port",
                        str(port),
                        "--name",
                        f"smoke-w{index}",
                        "--retry-seconds",
                        "60",
                    ],
                    env=env,
                )
            )
    try:
        code = main(argv)
    finally:
        # On the success path workers have already been sent shutdown;
        # terminate() is then a no-op but fails fast when the coordinator
        # died and workers would otherwise retry for their full window.
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    if code != 0:
        raise SystemExit(f"campaign run --backend {backend} exited with {code}")
    return (
        json.loads(summary.read_text(encoding="utf-8")),
        json.loads(report.read_text(encoding="utf-8")),
        json.loads(payloads.read_text(encoding="utf-8")),
    )


def backend_matrix(tmp_path: Path, failures: list[str]) -> None:
    spec = table2.campaign_spec(
        datasets=("cifar10", "cifar100"),
        distributions=(True,),
        methods=("ComDML", "FedAvg"),
        max_rounds=80,
    )
    spec_path = tmp_path / "mini.json"
    spec.save(spec_path)

    summaries, payload_sets = {}, {}
    for backend in BACKENDS:
        summary, report, payloads = run_backend(backend, spec_path, tmp_path)
        summaries[backend] = (tmp_path / f"summary-{backend}.json").read_bytes()
        payload_sets[backend] = payloads
        check(summary["cells"] == 4, f"[{backend}] expands to 2x2 = 4 cells", failures)
        check(
            report["cache_misses"] == report["cells"],
            f"[{backend}] cold run computes every cell",
            failures,
        )
        check(
            report["backend"] == backend,
            f"[{backend}] report names the backend",
            failures,
        )
        if backend == "worker-pool":
            check(
                report["workers_joined"] == 2,
                "[worker-pool] both localhost workers joined",
                failures,
            )
        print(
            f"    {backend}: {report['wall_seconds']:.2f}s wall "
            f"({report['speedup']:.2f}x vs serial cold run)"
        )

    reference = summaries["serial"]
    for backend in BACKENDS[1:]:
        check(
            summaries[backend] == reference,
            f"[{backend}] --summary-json byte-identical to serial",
            failures,
        )
        check(
            payload_sets[backend] == payload_sets["serial"],
            f"[{backend}] payloads identical to serial",
            failures,
        )

    # Warm re-run over the serial cache: 100 % hits, summary unchanged.
    warm_summary = tmp_path / "summary-warm.json"
    warm_report = tmp_path / "report-warm.json"
    code = main(
        [
            "campaign",
            "run",
            str(spec_path),
            "--cache-dir",
            str(tmp_path / "cache-serial"),
            "--summary-json",
            str(warm_summary),
            "--report-json",
            str(warm_report),
            "--no-progress",
        ]
    )
    check(code == 0, "warm re-run exits 0", failures)
    warm = json.loads(warm_report.read_text(encoding="utf-8"))
    check(
        warm["cache_hits"] == warm["cells"] and warm["cache_misses"] == 0,
        "warm re-run is 100% cache hits",
        failures,
    )
    check(
        warm_summary.read_bytes() == reference,
        "warm --summary-json byte-identical to the cold one",
        failures,
    )


# ----------------------------------------------------------------------
# Cache stability under source edits
# ----------------------------------------------------------------------

RUNNER = "ablation-allreduce"
RUNNER_MODULE = "repro.experiments.ablations"
PROBE = (
    "import json; "
    "from repro.experiments.campaign import cell_key; "
    "from repro.experiments.fingerprint import module_source_closure; "
    f"print(json.dumps({{'key': cell_key({RUNNER!r}, {{'num_agents': 4}}), "
    f"'closure': sorted(module_source_closure({RUNNER_MODULE!r}))}}))"
)


def probe_key(src_copy: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_copy)
    output = subprocess.run(
        [sys.executable, "-c", PROBE],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return json.loads(output)


def module_path(src_copy: Path, module: str) -> Path:
    parts = module.split(".")
    path = src_copy.joinpath(*parts)
    return path / "__init__.py" if path.is_dir() else path.with_suffix(".py")


def cache_stability(tmp_path: Path, failures: list[str]) -> None:
    src_copy = tmp_path / "srccopy"
    shutil.copytree(ROOT / "src", src_copy)

    baseline = probe_key(src_copy)
    closure = set(baseline["closure"])
    check(RUNNER_MODULE in closure, "runner module is inside its own closure", failures)

    # Find a repro module genuinely outside the runner's closure (skip
    # package __init__ files: ancestor __init__s are hashed into closures
    # by design now, so probing a leaf module is the honest check).
    unrelated = None
    for candidate in sorted((src_copy / "repro").rglob("*.py")):
        if candidate.name == "__init__.py":
            continue
        module = ".".join(candidate.relative_to(src_copy).with_suffix("").parts)
        if module not in closure and module != "repro.version":
            unrelated = (candidate, module)
            break
    check(unrelated is not None, "found a module outside the runner closure", failures)
    if unrelated is None:
        return
    path, module = unrelated
    path.write_text(path.read_text(encoding="utf-8") + "\n# smoke probe\n")
    check(
        probe_key(src_copy)["key"] == baseline["key"],
        f"editing unrelated module ({module}) keeps the cell key",
        failures,
    )

    version_path = module_path(src_copy, "repro.version")
    version_text = version_path.read_text(encoding="utf-8")
    bumped = re.sub(r'__version__ = ".*?"', '__version__ = "99.0.0"', version_text)
    check(bumped != version_text, "version bump actually edited version.py", failures)
    version_path.write_text(bumped)
    check(
        probe_key(src_copy)["key"] == baseline["key"],
        "bumping the package version keeps the cell key",
        failures,
    )

    # The execution engine orchestrates around cells; editing it must not
    # cold-start every cache (contract changes go through
    # CACHE_SCHEMA_VERSION instead).
    engine_path = module_path(src_copy, "repro.experiments.campaign")
    engine_path.write_text(
        engine_path.read_text(encoding="utf-8") + "\n# smoke probe\n"
    )
    check(
        probe_key(src_copy)["key"] == baseline["key"],
        "editing the campaign engine keeps the cell key",
        failures,
    )

    runner_path = module_path(src_copy, RUNNER_MODULE)
    runner_path.write_text(
        runner_path.read_text(encoding="utf-8") + "\n# smoke probe\n"
    )
    check(
        probe_key(src_copy)["key"] != baseline["key"],
        "editing the runner's own module changes the cell key",
        failures,
    )


def main_smoke() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as tmp:
        tmp_path = Path(tmp)
        backend_matrix(tmp_path, failures)
        cache_stability(tmp_path, failures)
    if failures:
        for message in failures:
            print(f"FAILED: {message}", file=sys.stderr)
        return 1
    print("campaign smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
