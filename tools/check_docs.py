#!/usr/bin/env python3
"""Docs health check: link-check the markdown docs and run their doctests.

Two checks over ``README.md`` and ``docs/*.md``:

1. **Links** — every relative markdown link target must exist on disk
   (external ``http(s)``/``mailto`` links are format-checked only; no
   network access is required).
2. **Runnable examples** — fenced code blocks whose info string is
   ``python doctest`` are executed with :mod:`doctest` against the real
   package (``src/`` is put on ``sys.path``), so the documented snippets
   cannot silently rot.

Exits non-zero on any failure.  Run locally with::

    python tools/check_docs.py

CI runs this as the ``docs`` job; ``tests/test_docs.py`` runs it inside the
regular pytest suite as well.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced blocks explicitly marked runnable.
DOCTEST_FENCE_RE = re.compile(r"```python doctest\n(.*?)```", re.DOTALL)
#: External link schemes we accept without resolving.
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path) -> list[str]:
    """Broken relative links in one markdown file."""
    errors: list[str] = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:  # pure in-page anchor
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(ROOT)}: broken link -> {target}"
            )
    return errors


def run_doctests(path: Path) -> tuple[int, list[str]]:
    """Run every ``python doctest`` fence of one file; returns (count, errors)."""
    errors: list[str] = []
    parser = doctest.DocTestParser()
    fences = DOCTEST_FENCE_RE.findall(path.read_text(encoding="utf-8"))
    for index, source in enumerate(fences):
        name = f"{path.relative_to(ROOT)}[doctest fence {index}]"
        test = parser.get_doctest(source, {}, name, str(path), 0)
        runner = doctest.DocTestRunner(verbose=False)
        result = runner.run(test)
        if result.failed:
            errors.append(f"{name}: {result.failed} example(s) failed")
    return len(fences), errors


def main() -> int:
    errors: list[str] = []
    total_fences = 0
    files = doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    for path in files:
        errors.extend(check_links(path))
        count, doctest_errors = run_doctests(path)
        total_fences += count
        errors.extend(doctest_errors)
    print(
        f"checked {len(files)} file(s), ran {total_fences} doctest fence(s)"
    )
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
