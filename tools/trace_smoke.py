#!/usr/bin/env python3
"""Trace pipeline + audit-chain smoke check (run in CI).

End-to-end through the real CLI:

1. **Record** — ``comdml trace record`` runs a mini scenario with a
   sealed JSONL sink.
2. **Verify clean** — ``comdml trace verify`` accepts the untampered
   trace (exit 0) and its event count matches the sealed payload.
3. **Tamper** — a single byte is mutated inside one event line; verify
   must now exit 1 and name exactly that event as the first divergent
   index. A dropped line and a swapped adjacent pair must do the same.
4. **Conservation** — a filtered, multi-sink pipeline run holds
   ``emitted == delivered + dropped`` for every sink.
5. **Campaign chain** — a mini ``campaign run --summary-json`` output
   passes ``verify_campaign_summary`` and fails it after one cell digest
   is mutated.

Exits non-zero on any violation.  Run locally with::

    PYTHONPATH=src python tools/trace_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402  (needs src on sys.path first)
from repro.experiments import table2  # noqa: E402
from repro.runtime.audit import (  # noqa: E402
    read_sealed_events,
    verify_campaign_summary,
    verify_sealed_jsonl,
)
from repro.runtime.filters import LevelFilter  # noqa: E402
from repro.runtime.sinks import JSONLSink  # noqa: E402
from repro.runtime.trace import EventTrace  # noqa: E402

TAMPER_EVENT = 3


def check(condition: bool, message: str, failures: list[str]) -> None:
    print(("ok  " if condition else "FAIL") + f" {message}")
    if not condition:
        failures.append(message)


def event_line_numbers(path: Path) -> list[int]:
    lines = path.read_text(encoding="utf-8").splitlines()
    return [i for i, line in enumerate(lines) if "seal" not in json.loads(line)]


def write_lines(path: Path, lines: list[str]) -> None:
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def record_and_tamper(tmp_path: Path, failures: list[str]) -> None:
    trace_path = tmp_path / "run.jsonl"
    code = main(
        [
            "trace",
            "record",
            "--out",
            str(trace_path),
            "--agents",
            "8",
            "--max-rounds",
            "6",
            "--churn",
            "0.4",
            "--segment-events",
            "16",
        ]
    )
    check(code == 0, "trace record exits 0", failures)

    result = verify_sealed_jsonl(trace_path)
    check(result.ok, "untampered trace verifies clean", failures)
    check(
        result.events == len(read_sealed_events(trace_path)),
        "sealed event count matches the payload",
        failures,
    )
    check(
        main(["trace", "verify", str(trace_path)]) == 0,
        "CLI verify exits 0 on the clean trace",
        failures,
    )

    lines = trace_path.read_text(encoding="utf-8").splitlines()
    event_lines = event_line_numbers(trace_path)

    # One mutated byte inside event TAMPER_EVENT's kind field.
    flipped = list(lines)
    line_no = event_lines[TAMPER_EVENT]
    flipped[line_no] = flipped[line_no].replace('"kind": "', '"kind": "x', 1).replace(
        '"kind":"', '"kind":"x', 1
    )
    check(flipped[line_no] != lines[line_no], "byte flip edited the line", failures)
    flipped_path = tmp_path / "flipped.jsonl"
    write_lines(flipped_path, flipped)
    result = verify_sealed_jsonl(flipped_path)
    check(
        not result.ok and result.first_divergent_index == TAMPER_EVENT,
        f"byte flip detected at exactly event {TAMPER_EVENT}",
        failures,
    )
    check(
        main(["trace", "verify", str(flipped_path)]) == 1,
        "CLI verify exits 1 on the tampered trace",
        failures,
    )

    # One dropped event line.
    dropped = [line for i, line in enumerate(lines) if i != event_lines[TAMPER_EVENT]]
    dropped_path = tmp_path / "dropped.jsonl"
    write_lines(dropped_path, dropped)
    result = verify_sealed_jsonl(dropped_path)
    check(
        not result.ok and result.first_divergent_index == TAMPER_EVENT,
        f"dropped event detected at exactly event {TAMPER_EVENT}",
        failures,
    )

    # Two adjacent events swapped.
    swapped = list(lines)
    a, b = event_lines[TAMPER_EVENT], event_lines[TAMPER_EVENT + 1]
    swapped[a], swapped[b] = swapped[b], swapped[a]
    swapped_path = tmp_path / "swapped.jsonl"
    write_lines(swapped_path, swapped)
    result = verify_sealed_jsonl(swapped_path)
    check(
        not result.ok and result.first_divergent_index == TAMPER_EVENT,
        f"reordered events detected at exactly event {TAMPER_EVENT}",
        failures,
    )


def pipeline_conservation(tmp_path: Path, failures: list[str]) -> None:
    sink = JSONLSink(tmp_path / "pipeline.jsonl", segment_events=8)
    trace = EventTrace(
        max_events=16,
        filters=(LevelFilter(20),),
        sinks=(sink,),
        buffer_capacity=8,
    )
    for i in range(100):
        kind = ("engine_event", "unit_complete", "round_end")[i % 3]
        trace.record(float(i), i // 10, kind)
    trace.close()
    check(trace.stats.emitted == 100, "pipeline saw every offered event", failures)
    check(trace.dropped_events > 0, "filters/capacity dropped something", failures)
    try:
        trace.check_conservation()
        conserved = True
    except AssertionError:
        conserved = False
    check(conserved, "emitted == delivered + dropped for every sink", failures)
    check(
        verify_sealed_jsonl(tmp_path / "pipeline.jsonl").ok,
        "pipeline-produced sealed trace verifies clean",
        failures,
    )


def campaign_chain(tmp_path: Path, failures: list[str]) -> None:
    spec = table2.campaign_spec(
        datasets=("cifar10",),
        distributions=(True,),
        methods=("ComDML", "FedAvg"),
        max_rounds=40,
    )
    spec_path = tmp_path / "mini.json"
    spec.save(spec_path)
    summary_path = tmp_path / "summary.json"
    code = main(
        [
            "campaign",
            "run",
            str(spec_path),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--summary-json",
            str(summary_path),
            "--no-progress",
        ]
    )
    check(code == 0, "mini campaign run exits 0", failures)
    summary = json.loads(summary_path.read_text(encoding="utf-8"))
    check(
        verify_campaign_summary(summary).ok,
        "campaign summary chain verifies clean",
        failures,
    )
    summary["per_cell"][0]["payload_digest"] = "0" * 64
    result = verify_campaign_summary(summary)
    check(
        not result.ok and result.first_divergent_index == 0,
        "mutated cell digest detected at exactly cell 0",
        failures,
    )


def main_smoke() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
        tmp_path = Path(tmp)
        record_and_tamper(tmp_path, failures)
        pipeline_conservation(tmp_path, failures)
        campaign_chain(tmp_path, failures)
    if failures:
        for message in failures:
            print(f"FAILED: {message}", file=sys.stderr)
        return 1
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
